//! Expected payoffs under a congestion policy (Eq. 2–3).
//!
//! The central quantity is the *congestion response*
//! `g_C(q) = E[C(1 + Bin(k−1, q))] = Σ_{j=0}^{k−1} C(j+1)·b_{j,k−1}(q)`,
//! the expected per-unit-value payoff of a player at a site where every one
//! of the other `k−1` players shows up independently with probability `q`.
//! Then `ν_p(x) = f(x)·g_C(p(x))` (the paper's value of a site), and the
//! expected payoff of playing `ρ` against a symmetric field `p` is
//! `Σ_x ρ(x)·ν_p(x)`.
//!
//! For heterogeneous opponent profiles (the ESS conditions need
//! `E(ρ; σ^a, π^b)`), the number of opponents at a site follows a
//! Poisson–binomial law, evaluated exactly by [`crate::numerics`].

use crate::error::{Error, Result};
use crate::kernel::{GTable, GridSpec, PbCache};
use crate::numerics::{binomial_pmf_vector, kahan_sum};
use crate::policy::Congestion;
use crate::strategy::Strategy;
use crate::value::ValueProfile;

/// Relative tolerance for congestion-table comparisons (degeneracy and
/// monotonicity checks), keyed off the table's leading coefficient so
/// scaled policies (`C(1) ≫ 1`) classify correctly.
const REL_TOL: f64 = 1e-12;

/// Precomputed evaluation context for a `(C, k)` pair: caches the table
/// `C(1..=k)` and a batched [`GTable`] kernel so hot loops avoid both
/// virtual dispatch and per-call PMF setup.
#[derive(Debug, Clone)]
pub struct PayoffContext {
    /// The batched congestion-response kernel (owns the coefficient table
    /// `c_table[j] = C(j + 1)`).
    kernel: GTable,
    k: usize,
}

impl PayoffContext {
    /// Build a context for `k ≥ 1` players, validating the policy axioms.
    pub fn new(c: &dyn Congestion, k: usize) -> Result<Self> {
        let c_table = crate::policy::validate_congestion(c, k)?;
        Ok(Self { kernel: GTable::from_coefficients(c_table)?, k })
    }

    /// Build a context directly from a coefficient table `[C(1), …, C(k)]`
    /// **without** the `C(1) = 1` normalization requirement — the entry
    /// point for scaled policies (e.g. reward-designed tables with
    /// `C(1) = 10⁹`). The table must be non-empty, finite, and
    /// non-increasing up to a *relative* tolerance of its own scale.
    pub fn from_table(c_table: Vec<f64>) -> Result<Self> {
        if c_table.is_empty() {
            return Err(Error::InvalidPlayerCount { k: 0 });
        }
        let scale = c_table[0].abs().max(1.0);
        for ell in 0..c_table.len() - 1 {
            if c_table[ell + 1] > c_table[ell] + REL_TOL * scale {
                return Err(Error::IncreasingCongestion {
                    ell: ell + 1,
                    c_ell: c_table[ell],
                    c_next: c_table[ell + 1],
                });
            }
        }
        let k = c_table.len();
        Ok(Self { kernel: GTable::from_coefficients(c_table)?, k })
    }

    /// Attach a cubic-Hermite interpolation grid to this context's kernel
    /// at a **per-call tolerance** (see [`GTable::with_grid`]): solvers
    /// whose inner loops go through [`GTable::eval_fast_with`] — the IFD
    /// water-filling bisections, and everything built on them (SPoA,
    /// sweeps) — then answer in `O(1)` per evaluation instead of `O(k)`,
    /// which is what makes `k ∈ [10³, 10⁴]` regime studies affordable.
    /// Without this call those paths fall back to the exact kernel and
    /// stay bit-identical to the scalar reference; with it, results move
    /// by at most a few × `tol` × [`GTable::scale`]. At `k ≳ 10⁴` pass a
    /// loose tolerance (`1e-12` is below the Hermite error floor there).
    pub fn with_grid(self, tol: f64) -> Result<Self> {
        self.with_spec(GridSpec::Interpolated { tol })
    }

    /// Attach (or detach) an interpolation grid per `spec` — the
    /// context-level face of [`GTable::with_spec`], sharing the single
    /// [`GridSpec`] configuration surface and its one typed tolerance
    /// validation path. [`GridSpec::NonUniform`] is the `k → 10⁶` entry
    /// point: adaptive bisection resolves the `O(1/k)` boundary layer with
    /// a few hundred nodes where the uniform build overruns its budget.
    pub fn with_spec(mut self, spec: GridSpec) -> Result<Self> {
        self.kernel = self.kernel.with_spec(spec)?;
        Ok(self)
    }

    /// Number of players `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The cached table `C(1..=k)`.
    #[inline]
    pub fn c_table(&self) -> &[f64] {
        self.kernel.coefficients()
    }

    /// The batched evaluation kernel for this `(C, k)` pair. Hot loops
    /// should pull a [`crate::kernel::GScratch`] from it and use
    /// [`GTable::eval_with`]/[`GTable::eval_many_with`] — bit-identical to
    /// [`Self::g`] with none of its per-call setup.
    #[inline]
    pub fn kernel(&self) -> &GTable {
        &self.kernel
    }

    /// Whether the policy is degenerate (constant on `[1, k]`), in which
    /// case `g_C` is constant and site values do not react to congestion.
    ///
    /// The comparison is *relative* to `C(1)` so scaled tables (built via
    /// [`Self::from_table`], e.g. `C(1) = 10⁹`) classify the same way as
    /// their normalized counterparts.
    pub fn is_degenerate(&self) -> bool {
        let table = self.kernel.coefficients();
        let first = table[0];
        let tol = REL_TOL * first.abs().max(1.0);
        table.iter().all(|&v| (v - first).abs() <= tol)
    }

    /// The congestion response `g_C(q) = Σ_j C(j+1)·b_{j,k−1}(q)`.
    ///
    /// `g_C(0) = C(1) = 1` and `g_C(1) = C(k)`; for a non-constant
    /// non-increasing `C` it is strictly decreasing on `[0, 1]`.
    ///
    /// `q` within `±1e-12` of `[0, 1]` is clamped (round-off from
    /// renormalizing solvers and dynamics is expected); a genuinely
    /// out-of-range or non-finite `q` is rejected with
    /// [`Error::ProbabilityOutOfRange`] **in every build profile** —
    /// release builds no longer silently evaluate drifted probabilities.
    ///
    /// This is the scalar *reference* path; batch work should go through
    /// [`Self::kernel`], which produces bit-identical values.
    pub fn g(&self, q: f64) -> Result<f64> {
        if !q.is_finite() || !(-1e-12..=1.0 + 1e-12).contains(&q) {
            return Err(Error::ProbabilityOutOfRange { q });
        }
        let q = q.clamp(0.0, 1.0);
        let pmf = binomial_pmf_vector(self.k - 1, q);
        Ok(kahan_sum(pmf.iter().zip(self.c_table().iter()).map(|(p, c)| p * c)))
    }

    /// Infallible `g_C` for callers whose `q` is mathematically a
    /// probability but may carry round-off (solver interiors, ODE states):
    /// clamps `q` into `[0, 1]` and evaluates through the kernel.
    pub fn g_clamped(&self, q: f64) -> f64 {
        self.kernel.eval(q.clamp(0.0, 1.0))
    }

    /// Derivative `g_C'(q)`, via the Bernstein derivative identity
    /// `d/dq b_{j,n}(q) = n·(b_{j−1,n−1}(q) − b_{j,n−1}(q))`.
    ///
    /// Scalar reference path (clamps `q`); batch work should use
    /// [`GTable::eval_prime_with`] on [`Self::kernel`].
    pub fn g_prime(&self, q: f64) -> f64 {
        let n = self.k - 1;
        if n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let pmf = binomial_pmf_vector(n - 1, q);
        let c_table = self.c_table();
        // g'(q) = n Σ_j C(j+1) [b_{j-1,n-1} - b_{j,n-1}]
        //       = n Σ_i b_{i,n-1} (C(i+2) - C(i+1))
        let mut acc = 0.0;
        for (i, &b) in pmf.iter().enumerate() {
            acc += b * (c_table[i + 1] - c_table[i]);
        }
        n as f64 * acc
    }

    /// The site value `ν_p(x) = f(x)·g_C(p(x))` (Eq. 2). `px` is clamped
    /// into `[0, 1]` (debug builds assert it is within round-off of the
    /// range); use [`Self::g`] when out-of-range inputs must error.
    pub fn site_value(&self, fx: f64, px: f64) -> f64 {
        debug_assert!((-1e-12..=1.0 + 1e-12).contains(&px), "px out of range: {px}");
        fx * self.g_clamped(px)
    }

    /// All site values `ν_p(·)` for a symmetric field `p`, batched into a
    /// caller-owned slice (`out.len() == f.len()`): one kernel scratch for
    /// the whole row, no per-site setup.
    pub fn site_values_into(&self, f: &ValueProfile, p: &Strategy, out: &mut [f64]) -> Result<()> {
        if f.len() != p.len() {
            return Err(Error::DimensionMismatch { strategy: p.len(), profile: f.len() });
        }
        if out.len() != f.len() {
            return Err(Error::DimensionMismatch { strategy: out.len(), profile: f.len() });
        }
        let mut scratch = self.kernel.scratch();
        self.kernel.eval_many_with(&mut scratch, p.probs(), out)?;
        for (slot, &fx) in out.iter_mut().zip(f.values().iter()) {
            *slot *= fx;
        }
        Ok(())
    }

    /// All site values `ν_p(·)` for a symmetric field `p`.
    pub fn site_values(&self, f: &ValueProfile, p: &Strategy) -> Result<Vec<f64>> {
        let mut out = vec![0.0; f.len()];
        self.site_values_into(f, p, &mut out)?;
        Ok(out)
    }

    /// Expected payoff of playing `rho` when all `k − 1` opponents play `p`:
    /// `E(ρ; p^{k−1}) = Σ_x ρ(x)·f(x)·g_C(p(x))`.
    pub fn expected_payoff(&self, f: &ValueProfile, rho: &Strategy, p: &Strategy) -> Result<f64> {
        if f.len() != rho.len() {
            return Err(Error::DimensionMismatch { strategy: rho.len(), profile: f.len() });
        }
        let nu = self.site_values(f, p)?;
        Ok(kahan_sum(rho.probs().iter().zip(nu.iter()).map(|(r, v)| r * v)))
    }

    /// Symmetric expected payoff `U(p) = E(p; p^{k−1}) = Σ_x p(x)·ν_p(x)` —
    /// the individual welfare objective of Figure 1's blue curve.
    pub fn symmetric_payoff(&self, f: &ValueProfile, p: &Strategy) -> Result<f64> {
        self.expected_payoff(f, p, p)
    }

    /// Gradient of `U(p)` w.r.t. `p`:
    /// `∂U/∂p(x) = f(x)·(g_C(p(x)) + p(x)·g_C'(p(x)))`, evaluated in two
    /// batched kernel passes (values then derivatives).
    pub fn symmetric_payoff_gradient(&self, f: &ValueProfile, p: &Strategy) -> Result<Vec<f64>> {
        if f.len() != p.len() {
            return Err(Error::DimensionMismatch { strategy: p.len(), profile: f.len() });
        }
        let m = f.len();
        let mut scratch = self.kernel.scratch();
        let mut gs = vec![0.0; m];
        let mut dgs = vec![0.0; m];
        self.kernel.eval_many_with(&mut scratch, p.probs(), &mut gs)?;
        self.kernel.eval_prime_many_with(&mut scratch, p.probs(), &mut dgs)?;
        Ok(f.values()
            .iter()
            .zip(p.probs().iter())
            .zip(gs.iter().zip(dgs.iter()))
            .map(|((&fx, &px), (&g, &dg))| fx * (g + px * dg))
            .collect())
    }

    /// Exact multi-opponent payoff `E(ρ; σ₁, …, σ_{k−1})` where each
    /// opponent may play a different strategy. At each site the number of
    /// opponents present is Poisson–binomial distributed.
    ///
    /// Allocates a fresh [`PbCache`] per call; batch callers evaluating
    /// many related profiles (ESS ledgers, mutant probes) should hold one
    /// cache and use [`Self::heterogeneous_payoff_with`] so sites and
    /// calls sharing an opponent-profile equivalence class reuse one
    /// `O(k²)` DP table.
    pub fn heterogeneous_payoff(
        &self,
        f: &ValueProfile,
        rho: &Strategy,
        opponents: &[&Strategy],
    ) -> Result<f64> {
        self.heterogeneous_payoff_with(f, rho, opponents, &PbCache::new())
    }

    /// [`Self::heterogeneous_payoff`] with a caller-owned Poisson–binomial
    /// table cache: every site whose opponent visit-probability multiset
    /// `{σᵢ(x)}` was already seen (in this call *or any previous call with
    /// the same cache*) reuses the cached `O(k²)` DP instead of rebuilding
    /// it. Agreement with the per-site one-shot DP is `O(k·ε)` (the cache
    /// convolves the *sorted* representative), far inside the 1e-13
    /// contract tested in CI.
    pub fn heterogeneous_payoff_with(
        &self,
        f: &ValueProfile,
        rho: &Strategy,
        opponents: &[&Strategy],
        cache: &PbCache,
    ) -> Result<f64> {
        if opponents.len() != self.k - 1 {
            return Err(Error::InvalidArgument(format!(
                "expected {} opponents for k = {}, got {}",
                self.k - 1,
                self.k,
                opponents.len()
            )));
        }
        if f.len() != rho.len() {
            return Err(Error::DimensionMismatch { strategy: rho.len(), profile: f.len() });
        }
        for o in opponents {
            if o.len() != f.len() {
                return Err(Error::DimensionMismatch { strategy: o.len(), profile: f.len() });
            }
        }
        let mut total = 0.0;
        let mut probs_at_site = vec![0.0; self.k - 1];
        for x in 0..f.len() {
            let rx = rho.prob(x);
            if rx == 0.0 {
                continue;
            }
            for (slot, o) in probs_at_site.iter_mut().zip(opponents.iter()) {
                *slot = o.prob(x);
            }
            let expected_c = cache.table(&probs_at_site)?.expectation(self.c_table());
            total += rx * f.value(x) * expected_c;
        }
        Ok(total)
    }

    /// The ESS-characterization payoff `E(ρ; σ^{a}, π^{b})` with `a + b =
    /// k − 1`: `a` opponents play `σ` and `b` play `π`.
    pub fn ess_payoff(
        &self,
        f: &ValueProfile,
        rho: &Strategy,
        sigma: &Strategy,
        a: usize,
        pi: &Strategy,
        b: usize,
    ) -> Result<f64> {
        if a + b != self.k - 1 {
            return Err(Error::InvalidArgument(format!(
                "opponent counts must satisfy a + b = k - 1, got {a} + {b} != {}",
                self.k - 1
            )));
        }
        let mut opponents: Vec<&Strategy> = Vec::with_capacity(self.k - 1);
        opponents.extend(std::iter::repeat_n(sigma, a));
        opponents.extend(std::iter::repeat_n(pi, b));
        self.heterogeneous_payoff(f, rho, &opponents)
    }

    /// Population-mixture payoff `U[ρ; (1−ε)σ + επ]` (Eq. 3). Because the
    /// `k − 1` opponents are drawn i.i.d. from the mixed population, this
    /// equals `E(ρ; μ^{k−1})` for the mixture strategy `μ = (1−ε)σ + επ`.
    pub fn mixture_payoff(
        &self,
        f: &ValueProfile,
        rho: &Strategy,
        sigma: &Strategy,
        pi: &Strategy,
        eps: f64,
    ) -> Result<f64> {
        let mu = sigma.mix(pi, eps)?;
        self.expected_payoff(f, rho, &mu)
    }

    /// Resident-minus-mutant advantage in the `ε`-mixed population:
    /// `U[σ; μ_ε] − U[π; μ_ε]` with `μ_ε = (1−ε)σ + επ` — the quantity
    /// the invasion barrier and the invasion experiments threshold on.
    ///
    /// Computed from **one** site-value pass over `μ_ε` (both payoffs dot
    /// the same `ν_{μ}` vector), so it is bit-identical to the difference
    /// of two [`Self::mixture_payoff`] calls at half the kernel work.
    pub fn mixture_advantage(
        &self,
        f: &ValueProfile,
        sigma: &Strategy,
        pi: &Strategy,
        eps: f64,
    ) -> Result<f64> {
        let mu = sigma.mix(pi, eps)?;
        let nu = self.site_values(f, &mu)?;
        let u_sigma = kahan_sum(sigma.probs().iter().zip(nu.iter()).map(|(r, v)| r * v));
        let u_pi = kahan_sum(pi.probs().iter().zip(nu.iter()).map(|(r, v)| r * v));
        Ok(u_sigma - u_pi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Constant, Exclusive, Sharing, TwoLevel};

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn context_validates_policy_and_k() {
        assert!(PayoffContext::new(&Exclusive, 0).is_err());
        assert!(PayoffContext::new(&Exclusive, 1).is_ok());
        assert!(PayoffContext::new(&Sharing, 5).is_ok());
    }

    #[test]
    fn g_endpoints() {
        let ctx = PayoffContext::new(&Sharing, 4).unwrap();
        close(ctx.g(0.0).unwrap(), 1.0, 1e-14); // C(1)
        close(ctx.g(1.0).unwrap(), 0.25, 1e-14); // C(4)
    }

    #[test]
    fn g_exclusive_closed_form() {
        // g_exc(q) = (1-q)^{k-1}
        let k = 6;
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        for &q in &[0.0, 0.1, 0.37, 0.9, 1.0] {
            close(ctx.g(q).unwrap(), (1.0 - q).powi(k as i32 - 1), 1e-13);
        }
    }

    #[test]
    fn g_sharing_closed_form() {
        // For sharing, E[1/(1+Bin(n,q))] = (1-(1-q)^{n+1})/((n+1) q).
        let k = 5;
        let n = k - 1;
        let ctx = PayoffContext::new(&Sharing, k).unwrap();
        for &q in &[0.1, 0.5, 0.9] {
            let expect = (1.0 - (1.0f64 - q).powi(n as i32 + 1)) / ((n as f64 + 1.0) * q);
            close(ctx.g(q).unwrap(), expect, 1e-13);
        }
    }

    #[test]
    fn g_single_player_is_always_one() {
        let ctx = PayoffContext::new(&Sharing, 1).unwrap();
        for &q in &[0.0, 0.5, 1.0] {
            close(ctx.g(q).unwrap(), 1.0, 1e-15);
        }
        close(ctx.g_prime(0.3), 0.0, 1e-15);
    }

    #[test]
    fn g_is_strictly_decreasing_for_nonconstant_policies() {
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.4 }] {
            let ctx = PayoffContext::new(c, 5).unwrap();
            let mut prev = ctx.g(0.0).unwrap();
            for i in 1..=20 {
                let q = i as f64 / 20.0;
                let cur = ctx.g(q).unwrap();
                assert!(cur < prev, "{}: g({q}) = {cur} >= {prev}", c.name());
                prev = cur;
            }
        }
    }

    #[test]
    fn degenerate_detection() {
        assert!(PayoffContext::new(&Constant, 4).unwrap().is_degenerate());
        assert!(!PayoffContext::new(&Sharing, 4).unwrap().is_degenerate());
        // Every policy is degenerate for k = 1 (only C(1) matters).
        assert!(PayoffContext::new(&Sharing, 1).unwrap().is_degenerate());
    }

    #[test]
    fn degenerate_detection_is_relative_to_scale() {
        // A scaled constant policy: C(1) = 1e9 with round-off-level wiggle
        // (relative 1e-13). The old absolute 1e-12 comparison misclassified
        // this as non-degenerate; the relative check does not.
        let wiggly = PayoffContext::from_table(vec![1e9, 1e9 - 1e-4, 1e9 - 1e-4]).unwrap();
        assert!(wiggly.is_degenerate());
        // A genuinely decaying scaled policy stays non-degenerate.
        let scaled_exclusive = PayoffContext::from_table(vec![1e9, 0.0, 0.0]).unwrap();
        assert!(!scaled_exclusive.is_degenerate());
    }

    #[test]
    fn from_table_validates_and_scales() {
        assert!(PayoffContext::from_table(vec![]).is_err());
        assert!(PayoffContext::from_table(vec![1.0, f64::NAN]).is_err());
        // Increasing beyond relative tolerance is rejected …
        assert!(matches!(
            PayoffContext::from_table(vec![1e9, 1e9 + 1.0]),
            Err(Error::IncreasingCongestion { .. })
        ));
        // … but round-off-level increase at scale is tolerated.
        let ctx = PayoffContext::from_table(vec![1e9, 1e9 + 1e-5]).unwrap();
        assert_eq!(ctx.k(), 2);
        close(ctx.g(0.0).unwrap(), 1e9, 1e-3);
    }

    #[test]
    fn g_rejects_out_of_range_in_all_profiles() {
        let ctx = PayoffContext::new(&Sharing, 4).unwrap();
        // Round-off within tolerance clamps to the endpoint value.
        assert_eq!(ctx.g(-1e-13).unwrap().to_bits(), ctx.g(0.0).unwrap().to_bits());
        assert_eq!(ctx.g(1.0 + 1e-13).unwrap().to_bits(), ctx.g(1.0).unwrap().to_bits());
        // Genuinely out-of-range and non-finite inputs error (this check
        // runs in release builds too — it is not a debug_assert).
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                matches!(ctx.g(bad), Err(Error::ProbabilityOutOfRange { .. })),
                "g({bad}) should be rejected"
            );
        }
        // The clamped variant never errors.
        assert_eq!(ctx.g_clamped(1.5).to_bits(), ctx.g(1.0).unwrap().to_bits());
        assert_eq!(ctx.g_clamped(-3.0).to_bits(), ctx.g(0.0).unwrap().to_bits());
    }

    #[test]
    fn site_values_into_checks_output_length() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let p = Strategy::uniform(2).unwrap();
        let ctx = PayoffContext::new(&Sharing, 2).unwrap();
        let mut too_short = vec![0.0; 1];
        assert!(ctx.site_values_into(&f, &p, &mut too_short).is_err());
        let mut out = vec![0.0; 2];
        ctx.site_values_into(&f, &p, &mut out).unwrap();
        assert_eq!(out, ctx.site_values(&f, &p).unwrap());
    }

    #[test]
    fn g_prime_matches_finite_difference() {
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.25 }] {
            let ctx = PayoffContext::new(c, 7).unwrap();
            let h = 1e-6;
            for &q in &[0.1, 0.4, 0.8] {
                let fd = (ctx.g(q + h).unwrap() - ctx.g(q - h).unwrap()) / (2.0 * h);
                close(ctx.g_prime(q), fd, 1e-6);
            }
        }
    }

    #[test]
    fn site_values_and_expected_payoff() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let p = Strategy::new(vec![0.6, 0.4]).unwrap();
        let ctx = PayoffContext::new(&Exclusive, 2).unwrap();
        let nu = ctx.site_values(&f, &p).unwrap();
        close(nu[0], 1.0 * 0.4, 1e-14);
        close(nu[1], 0.5 * 0.6, 1e-14);
        let u = ctx.symmetric_payoff(&f, &p).unwrap();
        close(u, 0.6 * 0.4 + 0.4 * 0.3, 1e-14);
    }

    #[test]
    fn heterogeneous_matches_symmetric_when_identical() {
        let f = ValueProfile::zipf(6, 1.0, 1.0).unwrap();
        let p = Strategy::proportional(f.values()).unwrap();
        let rho = Strategy::uniform(6).unwrap();
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.2 }] {
            let ctx = PayoffContext::new(c, 4).unwrap();
            let sym = ctx.expected_payoff(&f, &rho, &p).unwrap();
            let het = ctx.heterogeneous_payoff(&f, &rho, &[&p, &p, &p]).unwrap();
            close(sym, het, 1e-12);
        }
    }

    #[test]
    fn ess_payoff_validates_counts() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let s = Strategy::uniform(2).unwrap();
        let ctx = PayoffContext::new(&Exclusive, 3).unwrap();
        assert!(ctx.ess_payoff(&f, &s, &s, 1, &s, 1).is_ok());
        assert!(ctx.ess_payoff(&f, &s, &s, 2, &s, 1).is_err());
    }

    #[test]
    fn ess_payoff_exclusive_closed_form() {
        // Under exclusive policy: E(rho; sigma^a, pi^b)
        //   = sum_x rho(x) f(x) (1-sigma(x))^a (1-pi(x))^b.
        let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
        let sigma = Strategy::new(vec![0.5, 0.3, 0.2]).unwrap();
        let pi = Strategy::new(vec![0.1, 0.2, 0.7]).unwrap();
        let rho = Strategy::new(vec![0.2, 0.5, 0.3]).unwrap();
        let k = 5;
        let (a, b) = (3usize, 1usize);
        let ctx = PayoffContext::new(&Exclusive, k).unwrap();
        let got = ctx.ess_payoff(&f, &rho, &sigma, a, &pi, b).unwrap();
        let expect: f64 = (0..3)
            .map(|x| {
                rho.prob(x)
                    * f.value(x)
                    * (1.0 - sigma.prob(x)).powi(a as i32)
                    * (1.0 - pi.prob(x)).powi(b as i32)
            })
            .sum();
        close(got, expect, 1e-13);
    }

    #[test]
    fn mixture_payoff_interpolates() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let sigma = Strategy::new(vec![0.8, 0.2]).unwrap();
        let pi = Strategy::new(vec![0.2, 0.8]).unwrap();
        let rho = Strategy::uniform(2).unwrap();
        let ctx = PayoffContext::new(&Sharing, 3).unwrap();
        let at0 = ctx.mixture_payoff(&f, &rho, &sigma, &pi, 0.0).unwrap();
        let vs_sigma = ctx.expected_payoff(&f, &rho, &sigma).unwrap();
        close(at0, vs_sigma, 1e-14);
        let at1 = ctx.mixture_payoff(&f, &rho, &sigma, &pi, 1.0).unwrap();
        let vs_pi = ctx.expected_payoff(&f, &rho, &pi).unwrap();
        close(at1, vs_pi, 1e-14);
    }

    #[test]
    fn mixture_payoff_equals_binomial_mixture_of_ess_payoffs() {
        // Eq. (3): U[rho; (1-eps)sigma + eps pi]
        //   = sum_l binom(k-1, l) (1-eps)^l eps^{k-1-l} E(rho; sigma^l, pi^{k-1-l}).
        let f = ValueProfile::new(vec![1.0, 0.7, 0.3]).unwrap();
        let sigma = Strategy::new(vec![0.6, 0.3, 0.1]).unwrap();
        let pi = Strategy::new(vec![0.1, 0.1, 0.8]).unwrap();
        let rho = Strategy::new(vec![0.3, 0.3, 0.4]).unwrap();
        let k = 4usize;
        let eps = 0.3;
        let ctx = PayoffContext::new(&Sharing, k).unwrap();
        let direct = ctx.mixture_payoff(&f, &rho, &sigma, &pi, eps).unwrap();
        let mut series = 0.0;
        for l in 0..k {
            let w = crate::numerics::binomial_pmf(k - 1, l, 1.0 - eps);
            let e = ctx.ess_payoff(&f, &rho, &sigma, l, &pi, k - 1 - l).unwrap();
            series += w * e;
        }
        close(direct, series, 1e-12);
    }

    #[test]
    fn mixture_advantage_is_bit_identical_to_payoff_difference() {
        let f = ValueProfile::new(vec![1.0, 0.7, 0.3]).unwrap();
        let sigma = Strategy::new(vec![0.6, 0.3, 0.1]).unwrap();
        let pi = Strategy::new(vec![0.1, 0.1, 0.8]).unwrap();
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.2 }] {
            let ctx = PayoffContext::new(c, 4).unwrap();
            for &eps in &[0.0, 0.05, 0.3, 0.9, 1.0] {
                let direct = ctx.mixture_payoff(&f, &sigma, &sigma, &pi, eps).unwrap()
                    - ctx.mixture_payoff(&f, &pi, &sigma, &pi, eps).unwrap();
                let fused = ctx.mixture_advantage(&f, &sigma, &pi, eps).unwrap();
                assert_eq!(direct.to_bits(), fused.to_bits(), "{} eps = {eps}", c.name());
            }
        }
    }

    #[test]
    fn heterogeneous_payoff_shares_tables_across_calls() {
        let f = ValueProfile::zipf(5, 1.0, 1.0).unwrap();
        let sigma = Strategy::proportional(f.values()).unwrap();
        let pi = Strategy::uniform(5).unwrap();
        let rho = Strategy::delta(5, 0).unwrap();
        let ctx = PayoffContext::new(&Sharing, 4).unwrap();
        let cache = crate::kernel::PbCache::new();
        let opponents = [&sigma, &sigma, &pi];
        let a = ctx.heterogeneous_payoff_with(&f, &rho, &opponents, &cache).unwrap();
        let builds_first = cache.builds();
        assert!(builds_first > 0);
        // Second call with the same profiles: all tables come from the cache.
        let b = ctx.heterogeneous_payoff_with(&f, &rho, &opponents, &cache).unwrap();
        assert_eq!(cache.builds(), builds_first, "no new DP builds on a repeat call");
        assert!(cache.hits() > 0);
        assert_eq!(a.to_bits(), b.to_bits());
        // And the cached path matches the one-shot entry point.
        let fresh = ctx.heterogeneous_payoff(&f, &rho, &opponents).unwrap();
        assert!((a - fresh).abs() <= 1e-13);
    }

    #[test]
    fn dimension_checks() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let p2 = Strategy::uniform(2).unwrap();
        let p3 = Strategy::uniform(3).unwrap();
        let ctx = PayoffContext::new(&Sharing, 2).unwrap();
        assert!(ctx.site_values(&f, &p3).is_err());
        assert!(ctx.expected_payoff(&f, &p3, &p2).is_err());
        assert!(ctx.symmetric_payoff_gradient(&f, &p3).is_err());
        assert!(ctx.heterogeneous_payoff(&f, &p2, &[&p3]).is_err());
    }
}
