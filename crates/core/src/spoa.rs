//! The Symmetric Price of Anarchy (Section 1.2, Corollary 5, Theorem 6).
//!
//! For a congestion function `C` and value profile `f`,
//! `SPoA(C, f) = Cover(p⋆) / Cover(p_IFD)` — by Observation 2 the IFD is
//! the *unique* symmetric Nash equilibrium, so the supremum over equilibria
//! is just that one point. `SPoA(C)` is the supremum over value profiles;
//! [`spoa_supremum_search`] lower-bounds it over structured families plus
//! random instances (an exact supremum is a search over an
//! infinite-dimensional space; Theorem 6 only needs a witness > 1).

use crate::coverage::coverage;
use crate::error::Result;
use crate::ifd::{solve_ifd_allow_degenerate, solve_ifd_with_context, Ifd};
use crate::optimal::optimal_coverage;
use crate::payoff::PayoffContext;
use crate::policy::Congestion;
use crate::value::ValueProfile;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single SPoA evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpoaPoint {
    /// Coverage of the optimal symmetric strategy `p⋆`.
    pub optimal_coverage: f64,
    /// Coverage of the (unique) symmetric Nash equilibrium (the IFD).
    pub equilibrium_coverage: f64,
    /// The ratio `SPoA(C, f) = optimal / equilibrium`.
    pub ratio: f64,
    /// IFD diagnostics.
    pub ifd_support: usize,
    /// IFD residual (solver quality).
    pub ifd_residual: f64,
}

/// Evaluate `SPoA(C, f)` for `k` players.
///
/// Degenerate (constant) congestion functions are mapped to their natural
/// limiting equilibrium (mass on the top-value sites), matching the paper's
/// discussion of `C ≡ 1` having SPoA ≈ k.
pub fn spoa(c: &dyn Congestion, f: &ValueProfile, k: usize) -> Result<SpoaPoint> {
    let ifd: Ifd = solve_ifd_allow_degenerate(c, f, k)?;
    let eq_cov = coverage(f, &ifd.strategy, k)?;
    let opt = optimal_coverage(f, k)?;
    Ok(SpoaPoint {
        optimal_coverage: opt.coverage,
        equilibrium_coverage: eq_cov,
        ratio: opt.coverage / eq_cov,
        ifd_support: ifd.support,
        ifd_residual: ifd.residual,
    })
}

/// Evaluate `SPoA` with a prebuilt (non-degenerate) [`PayoffContext`] —
/// the entry point for large-`k` regime studies: attach an interpolation
/// grid ([`PayoffContext::with_grid`], e.g. at tolerance `1e-9`) and the
/// IFD water-filling inside runs `O(1)` per kernel evaluation instead of
/// `O(k)`.
pub fn spoa_with_context(ctx: &PayoffContext, f: &ValueProfile) -> Result<SpoaPoint> {
    let ifd: Ifd = solve_ifd_with_context(ctx, f)?;
    let k = ctx.k();
    let eq_cov = coverage(f, &ifd.strategy, k)?;
    let opt = optimal_coverage(f, k)?;
    Ok(SpoaPoint {
        optimal_coverage: opt.coverage,
        equilibrium_coverage: eq_cov,
        ratio: opt.coverage / eq_cov,
        ifd_support: ifd.support,
        ifd_residual: ifd.residual,
    })
}

/// Result of a supremum search for `SPoA(C)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpoaSearchResult {
    /// The best (largest) ratio found.
    pub best_ratio: f64,
    /// Description of the witness profile family.
    pub witness: String,
    /// The witness profile's values (possibly truncated for reporting).
    pub witness_values: Vec<f64>,
    /// Number of instances evaluated.
    pub instances: usize,
}

/// Lower-bound `SPoA(C)` by evaluating structured families (the Theorem 6
/// slow-decay witnesses at several decay levels, Zipf, geometric, linear)
/// and `random_instances` random profiles, all at player count `k` with
/// `m` sites.
pub fn spoa_supremum_search<R: Rng + ?Sized>(
    c: &dyn Congestion,
    k: usize,
    m: usize,
    random_instances: usize,
    rng: &mut R,
) -> Result<SpoaSearchResult> {
    let mut candidates: Vec<(String, ValueProfile)> = Vec::new();
    if k >= 2 {
        candidates.push(("slow-decay-witness".into(), ValueProfile::slow_decay_witness(m, k)?));
    }
    for &s in &[0.1, 0.25, 0.5, 1.0, 2.0] {
        candidates.push((format!("zipf(s={s})"), ValueProfile::zipf(m, 1.0, s)?));
    }
    for &rho in &[0.999, 0.99, 0.9, 0.7, 0.5] {
        candidates.push((format!("geometric(rho={rho})"), ValueProfile::geometric(m, 1.0, rho)?));
    }
    for &lo in &[0.9, 0.5, 0.1, 0.01] {
        candidates.push((format!("linear(lo={lo})"), ValueProfile::linear(m, 1.0, lo)?));
    }
    candidates.push(("uniform".into(), ValueProfile::uniform(m, 1.0)?));
    for i in 0..random_instances {
        let values: Vec<f64> = (0..m).map(|_| rng.gen::<f64>().max(1e-6)).collect();
        candidates.push((format!("random-{i}"), ValueProfile::from_unsorted(values)?));
    }
    let mut best = SpoaSearchResult {
        best_ratio: 0.0,
        witness: String::new(),
        witness_values: Vec::new(),
        instances: candidates.len(),
    };
    for (name, f) in candidates {
        let point = spoa(c, &f, k)?;
        if point.ratio > best.best_ratio {
            best.best_ratio = point.ratio;
            best.witness = name;
            best.witness_values = f.values().iter().take(16).copied().collect();
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Constant, Exclusive, PowerLaw, Sharing, TwoLevel};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exclusive_spoa_is_one_corollary5() {
        for (f, k) in [
            (ValueProfile::new(vec![1.0, 0.3]).unwrap(), 2usize),
            (ValueProfile::zipf(20, 1.0, 1.0).unwrap(), 5),
            (ValueProfile::geometric(15, 1.0, 0.8).unwrap(), 3),
            (ValueProfile::uniform(10, 2.0).unwrap(), 4),
        ] {
            let p = spoa(&Exclusive, &f, k).unwrap();
            assert!((p.ratio - 1.0).abs() < 1e-7, "k = {k}: SPoA = {}", p.ratio);
        }
    }

    #[test]
    fn non_exclusive_policies_have_spoa_above_one_theorem6() {
        let k = 3;
        let f = ValueProfile::slow_decay_witness(4 * k, k).unwrap();
        for c in [
            &Sharing as &dyn Congestion,
            &TwoLevel { c: 0.3 },
            &TwoLevel { c: -0.3 },
            &PowerLaw { beta: 0.5 },
        ] {
            let p = spoa(c, &f, k).unwrap();
            assert!(p.ratio > 1.0 + 1e-6, "{}: SPoA = {}", c.name(), p.ratio);
        }
    }

    #[test]
    fn constant_policy_spoa_grows_like_k() {
        // C == 1: everyone sits on site 1; with a near-uniform profile the
        // optimum covers ~k sites, so the ratio approaches k.
        let k = 6;
        let f = ValueProfile::slow_decay_witness(4 * k, k).unwrap();
        let p = spoa(&Constant, &f, k).unwrap();
        assert!(p.ratio > 0.6 * k as f64, "SPoA = {} for k = {k}", p.ratio);
        assert!(p.ratio <= k as f64 + 1e-9);
    }

    #[test]
    fn sharing_spoa_below_two_kleinberg_oren() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for k in [2usize, 4, 8] {
            let result = spoa_supremum_search(&Sharing, k, 30, 25, &mut rng).unwrap();
            assert!(
                result.best_ratio < 2.0 + 1e-9,
                "k = {k}: found ratio {} above the Vetta bound",
                result.best_ratio
            );
            assert!(result.best_ratio >= 1.0);
        }
    }

    #[test]
    fn search_reports_witness_metadata() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = spoa_supremum_search(&Sharing, 3, 12, 5, &mut rng).unwrap();
        assert!(!result.witness.is_empty());
        assert!(!result.witness_values.is_empty());
        assert!(result.instances > 10);
    }

    #[test]
    fn exclusive_search_never_exceeds_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let result = spoa_supremum_search(&Exclusive, 4, 16, 20, &mut rng).unwrap();
        assert!(
            (result.best_ratio - 1.0).abs() < 1e-6,
            "exclusive SPoA search found {}",
            result.best_ratio
        );
    }

    #[test]
    fn spoa_point_fields_consistent() {
        let f = ValueProfile::zipf(10, 1.0, 1.0).unwrap();
        let p = spoa(&Sharing, &f, 3).unwrap();
        assert!(p.optimal_coverage >= p.equilibrium_coverage - 1e-12);
        assert!((p.ratio - p.optimal_coverage / p.equilibrium_coverage).abs() < 1e-12);
        assert!(p.ifd_support >= 1);
        assert!(p.ifd_residual < 1e-8);
    }
}
