//! Projection onto the probability simplex and projected-gradient ascent.
//!
//! Shared by the independent optimality cross-checks (Theorem 4) and the
//! welfare optimizer (Figure 1's blue curve). The projection is the O(M log
//! M) sort-based algorithm of Held/Wolfe/Crowder (popularized by Duchi et
//! al.).

use crate::error::{Error, Result};
use crate::strategy::Strategy;

/// Euclidean projection of an arbitrary vector onto the probability simplex
/// `{p : p ≥ 0, Σp = 1}`.
pub fn project_to_simplex(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    debug_assert!(n > 0);
    let mut sorted = v.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut cumsum = 0.0;
    let mut rho = 0usize;
    let mut theta = 0.0;
    for (i, &u) in sorted.iter().enumerate() {
        cumsum += u;
        let candidate = (cumsum - 1.0) / (i as f64 + 1.0);
        if u - candidate > 0.0 {
            rho = i;
            theta = candidate;
        }
    }
    let _ = rho;
    v.iter().map(|&x| (x - theta).max(0.0)).collect()
}

/// Result of a projected-gradient run.
#[derive(Debug, Clone)]
pub struct AscentResult {
    /// Final point on the simplex.
    pub point: Strategy,
    /// Final objective value.
    pub objective: f64,
    /// Iterations actually used.
    pub iterations: usize,
    /// Final step-normalized improvement (convergence measure).
    pub last_improvement: f64,
}

/// Configuration for [`projected_gradient_ascent`].
#[derive(Debug, Clone, Copy)]
pub struct AscentConfig {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Initial step size.
    pub step: f64,
    /// Armijo backtracking shrink factor in `(0, 1)`.
    pub backtrack: f64,
    /// Stop when an accepted step improves the objective by less than this.
    pub tol: f64,
}

impl Default for AscentConfig {
    fn default() -> Self {
        Self { max_iters: 5_000, step: 0.5, backtrack: 0.5, tol: 1e-14 }
    }
}

/// Maximize a smooth objective over the simplex by projected gradient
/// ascent with Armijo backtracking.
///
/// `objective` and `gradient` are caller-supplied closures over probability
/// vectors (always fed feasible points).
pub fn projected_gradient_ascent<F, G>(
    start: &Strategy,
    objective: F,
    gradient: G,
    config: AscentConfig,
) -> Result<AscentResult>
where
    F: Fn(&[f64]) -> f64,
    G: Fn(&[f64]) -> Vec<f64>,
{
    if config.step <= 0.0 || !(0.0..1.0).contains(&config.backtrack) {
        return Err(Error::InvalidArgument(format!(
            "bad ascent config: step = {}, backtrack = {}",
            config.step, config.backtrack
        )));
    }
    let mut point = start.probs().to_vec();
    let mut value = objective(&point);
    let mut last_improvement = f64::INFINITY;
    let mut iterations = 0usize;
    for it in 0..config.max_iters {
        iterations = it + 1;
        let grad = gradient(&point);
        let mut step = config.step;
        let mut accepted = false;
        // Backtrack until the projected step improves the objective.
        for _ in 0..60 {
            let candidate: Vec<f64> =
                point.iter().zip(grad.iter()).map(|(p, g)| p + step * g).collect();
            let projected = project_to_simplex(&candidate);
            let cand_value = objective(&projected);
            if cand_value > value {
                last_improvement = cand_value - value;
                point = projected;
                value = cand_value;
                accepted = true;
                break;
            }
            step *= config.backtrack;
        }
        if !accepted || last_improvement < config.tol {
            break;
        }
    }
    Ok(AscentResult {
        point: Strategy::new(normalize(point))?,
        objective: value,
        iterations,
        last_improvement,
    })
}

/// Clean round-off: clamp tiny negatives and renormalize exactly.
fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    for x in v.iter_mut() {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in v.iter_mut() {
            *x /= s;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b}");
    }

    #[test]
    fn projection_of_feasible_point_is_identity() {
        let p = vec![0.2, 0.3, 0.5];
        let proj = project_to_simplex(&p);
        for (a, b) in p.iter().zip(proj.iter()) {
            close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn projection_lands_on_simplex() {
        let cases =
            vec![vec![2.0, -1.0, 0.5], vec![-5.0, -5.0], vec![0.0, 0.0, 0.0, 10.0], vec![1e9, 1e9]];
        for v in cases {
            let p = project_to_simplex(&v);
            let sum: f64 = p.iter().sum();
            close(sum, 1.0, 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn projection_matches_hand_example() {
        // Project (1, 0.5): theta solves ... both positive:
        // theta = (1.5 - 1)/2 = 0.25 -> (0.75, 0.25).
        let p = project_to_simplex(&[1.0, 0.5]);
        close(p[0], 0.75, 1e-12);
        close(p[1], 0.25, 1e-12);
    }

    #[test]
    fn projection_is_nonexpansive_vs_direct_search() {
        // Compare against brute-force grid minimizer of ||p - v||^2 on the
        // 2-simplex for a few points.
        let v = [0.9, 0.4, -0.2];
        let proj = project_to_simplex(&v);
        let mut best = f64::INFINITY;
        let mut best_p = [0.0; 3];
        let n = 200;
        for i in 0..=n {
            for j in 0..=(n - i) {
                let p = [i as f64 / n as f64, j as f64 / n as f64, (n - i - j) as f64 / n as f64];
                let d: f64 = p.iter().zip(v.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best {
                    best = d;
                    best_p = p;
                }
            }
        }
        for (a, b) in proj.iter().zip(best_p.iter()) {
            assert!((a - b).abs() < 0.02, "{proj:?} vs {best_p:?}");
        }
    }

    #[test]
    fn ascent_solves_concave_quadratic() {
        // Maximize -(p0 - 0.7)^2 - (p1 - 0.3)^2 on the simplex: optimum at
        // (0.7, 0.3).
        let start = Strategy::uniform(2).unwrap();
        let result = projected_gradient_ascent(
            &start,
            |p| -(p[0] - 0.7).powi(2) - (p[1] - 0.3).powi(2),
            |p| vec![-2.0 * (p[0] - 0.7), -2.0 * (p[1] - 0.3)],
            AscentConfig::default(),
        )
        .unwrap();
        close(result.point.prob(0), 0.7, 1e-6);
        close(result.point.prob(1), 0.3, 1e-6);
    }

    #[test]
    fn ascent_respects_boundary() {
        // Maximize p0 (linear): optimum is the vertex (1, 0, 0).
        let start = Strategy::uniform(3).unwrap();
        let result = projected_gradient_ascent(
            &start,
            |p| p[0],
            |_| vec![1.0, 0.0, 0.0],
            AscentConfig::default(),
        )
        .unwrap();
        close(result.point.prob(0), 1.0, 1e-9);
    }

    #[test]
    fn ascent_rejects_bad_config() {
        let start = Strategy::uniform(2).unwrap();
        let bad = AscentConfig { step: 0.0, ..Default::default() };
        assert!(projected_gradient_ascent(&start, |_| 0.0, |_| vec![0.0, 0.0], bad).is_err());
        let bad2 = AscentConfig { backtrack: 1.0, ..Default::default() };
        assert!(projected_gradient_ascent(&start, |_| 0.0, |_| vec![0.0, 0.0], bad2).is_err());
    }
}
