//! Batched evaluation kernel for the congestion response `g_C`.
//!
//! Everything in this workspace — site values `ν_p(x) = f(x)·g_C(p(x))`
//! (Eq. 2–3), IFD water-filling, welfare gradients, replicator dynamics,
//! and every experiment binary — bottoms out in the Bernstein-form sum
//! `g_C(q) = Σ_{j=0}^{k−1} C(j+1)·b_{j,k−1}(q)`. The scalar reference path
//! ([`crate::payoff::PayoffContext::g`]) rebuilds the binomial PMF from
//! scratch on every call, which costs `O(k)` *logarithm evaluations* per
//! point (three `ln_factorial` walks to seed the start-at-the-mode
//! recurrence) plus a fresh allocation. A parameter sweep over a 1k-point
//! grid at `k = 64` redoes that identical setup work millions of times.
//!
//! [`GTable`] hoists the per-`(C, k)` work out of the loop:
//!
//! * **Setup, once, `O(k)`** — the log-binomial rows `ln C(k−1, j)` (for
//!   `g`) and `ln C(k−2, j)` (for `g'`), built from a shared prefix-sum
//!   `ln`-factorial table, plus the forward differences
//!   `C(j+2) − C(j+1)` that are the Bernstein coefficients of `g'`.
//! * **Per point, `O(k)`, allocation-free** — two `ln` calls and one
//!   `exp` seed the PMF at its mode; the up/down ratio recurrence fills a
//!   caller-owned [`GScratch`]; a Kahan dot against the coefficient table
//!   finishes. The float operations are *exactly* those of the scalar
//!   path, so results are **bit-identical** to `PayoffContext::g` — the
//!   fast path cannot silently diverge.
//! * **Per point, `O(k)`, fused** — [`GTable::eval_fused`] trades bit
//!   identity for throughput: pre-divided recurrence factors (no serial
//!   division chain) and the coefficient dot product fused into the
//!   Bernstein walk. Agrees with the reference to `O(k·ε)` ≈ 1e-14 and
//!   needs no scratch at all.
//! * **Per point, `O(1)`, optional** — [`GTable::with_grid`] densifies
//!   `g` onto a uniform cubic-Hermite grid (exact values *and* exact
//!   derivatives at the nodes), refined until the measured interpolation
//!   error is below a caller-supplied bound (≤ 1e-12 of the coefficient
//!   scale by default). Grid evaluation is a table lookup plus a cubic —
//!   independent of `k`.
//!
//! The degree-raising view: `b_{j,n}` satisfies the ratio recurrence
//! `b_{j+1,n}(q) = b_{j,n}(q)·(n−j)/(j+1)·q/(1−q)`, which walks the whole
//! Bernstein row from a single seeded term without touching a factorial.

use crate::error::{Error, Result};
use crate::numerics::kahan_sum;
use crate::policy::Congestion;

/// Caller-owned scratch buffer for allocation-free kernel evaluation.
///
/// One scratch serves both `g` and `g'` queries of the table it was
/// created for (it is sized for the larger row). Scratches are cheap to
/// create but are meant to be reused across a whole batch, shard, or
/// solver run; evaluation needs `&mut` access, so give each worker its
/// own via [`GTable::scratch`] rather than contending over one.
#[derive(Debug, Clone)]
pub struct GScratch {
    pmf: Vec<f64>,
}

/// Dense cubic-Hermite interpolation grid over `[0, 1]` (values and
/// derivatives at `cells + 1` uniform nodes).
#[derive(Debug, Clone)]
struct HermiteGrid {
    ys: Vec<f64>,
    ds: Vec<f64>,
    cells: usize,
    measured_error: f64,
}

impl HermiteGrid {
    /// Evaluate the cubic Hermite interpolant at `q ∈ [0, 1]`.
    fn eval(&self, q: f64) -> f64 {
        let cells = self.cells as f64;
        let scaled = q * cells;
        let cell = (scaled as usize).min(self.cells - 1);
        let t = scaled - cell as f64;
        let h = 1.0 / cells;
        let (y0, y1) = (self.ys[cell], self.ys[cell + 1]);
        let (d0, d1) = (self.ds[cell] * h, self.ds[cell + 1] * h);
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * y0 + h10 * d0 + h01 * y1 + h11 * d1
    }
}

/// Precomputed batched evaluator for one congestion response `g_C` at a
/// fixed player count `k` (polynomial degree `n = k − 1`).
///
/// See the [module docs](self) for the design; the practical contract is:
///
/// * [`GTable::eval_with`] / [`GTable::eval_many_with`] are bit-identical
///   to [`crate::payoff::PayoffContext::g`] on `[0, 1]` and allocation-free
///   given a reused [`GScratch`];
/// * [`GTable::eval_prime_with`] is bit-identical to
///   [`crate::payoff::PayoffContext::g_prime`];
/// * after [`GTable::with_grid`], [`GTable::eval_fast_with`] answers in
///   `O(1)`; [`GTable::grid_error`] reports the error *measured at cell
///   midpoints* (where the cubic-Hermite error kernel peaks for smooth
///   `g`) — treat it as an estimate and budget a small multiple (the
///   tests use 4×) at arbitrary `q`.
#[derive(Debug, Clone)]
pub struct GTable {
    /// Bernstein coefficients of `g`: `coeffs[j] = C(j + 1)`, degree
    /// `n = coeffs.len() − 1`.
    coeffs: Vec<f64>,
    /// Forward differences `coeffs[j+1] − coeffs[j]` — up to the factor
    /// `n`, the Bernstein coefficients of `g'` (length `n`).
    dcoeffs: Vec<f64>,
    /// `ln C(n, j)` for `j = 0..=n`.
    ln_binom: Vec<f64>,
    /// `ln C(n−1, j)` for `j = 0..n` (empty when `n = 0`).
    ln_binom_prime: Vec<f64>,
    /// Pre-divided upward recurrence factors `(n − j)/(j + 1)` for the
    /// fused path (length `n`).
    up: Vec<f64>,
    /// Pre-divided downward recurrence factors `(j + 1)/(n − j)` for the
    /// fused path (length `n`).
    down: Vec<f64>,
    /// Optional dense O(1) interpolation grid.
    grid: Option<HermiteGrid>,
}

/// Fill `out[0..=n]` with the binomial PMF `P[Bin(n, q) = j]` using the
/// precomputed log-binomial row `ln_binom`. Operation-for-operation the
/// same as [`crate::numerics::binomial_pmf_vector`], with the three
/// `ln_factorial` walks replaced by one table read.
fn fill_pmf(ln_binom: &[f64], q: f64, out: &mut [f64]) {
    let n = out.len() - 1;
    if q <= 0.0 {
        out.fill(0.0);
        out[0] = 1.0;
        return;
    }
    if q >= 1.0 {
        out.fill(0.0);
        out[n] = 1.0;
        return;
    }
    let mode = (((n + 1) as f64) * q).floor().min(n as f64) as usize;
    let ln_mode = ln_binom[mode] + (mode as f64) * q.ln() + ((n - mode) as f64) * (1.0 - q).ln();
    out[mode] = ln_mode.exp();
    let ratio = q / (1.0 - q);
    for j in mode..n {
        out[j + 1] = out[j] * ((n - j) as f64) / ((j + 1) as f64) * ratio;
    }
    for j in (0..mode).rev() {
        out[j] = out[j + 1] * ((j + 1) as f64) / ((n - j) as f64) / ratio;
    }
}

/// `ln C(n, j)` for `j = 0..=n`, built from one prefix-sum pass over
/// `ln(i)`. The prefix accumulation performs the additions in the same
/// order as [`crate::numerics::ln_factorial`]'s iterator sum, so every
/// table entry is bit-identical to `ln_binomial(n, j)`.
fn ln_binom_row(n: usize) -> Vec<f64> {
    let mut ln_fact = vec![0.0; n + 1];
    for i in 2..=n {
        ln_fact[i] = ln_fact[i - 1] + (i as f64).ln();
    }
    (0..=n).map(|j| ln_fact[n] - ln_fact[j] - ln_fact[n - j]).collect()
}

impl GTable {
    /// Build a table for policy `c` and `k ≥ 1` players, validating the
    /// congestion axioms (`C(1) = 1`, non-increasing).
    pub fn new(c: &dyn Congestion, k: usize) -> Result<Self> {
        let coeffs = crate::policy::validate_congestion(c, k)?;
        Self::from_coefficients(coeffs)
    }

    /// Build a table directly from the coefficient vector
    /// `[C(1), …, C(k)]` without the `C(1) = 1` normalization check —
    /// the entry point for scaled policies (e.g. reward-designed tables
    /// with `C(1) = 10⁹`). Entries must be finite and the vector
    /// non-empty.
    pub fn from_coefficients(coeffs: Vec<f64>) -> Result<Self> {
        if coeffs.is_empty() {
            return Err(Error::InvalidPlayerCount { k: 0 });
        }
        if let Some((j, &v)) = coeffs.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(Error::InvalidArgument(format!(
                "congestion coefficient C({}) = {v} is not finite",
                j + 1
            )));
        }
        let n = coeffs.len() - 1;
        let dcoeffs: Vec<f64> = coeffs.windows(2).map(|w| w[1] - w[0]).collect();
        let ln_binom = ln_binom_row(n);
        let ln_binom_prime = if n == 0 { Vec::new() } else { ln_binom_row(n - 1) };
        let up: Vec<f64> = (0..n).map(|j| ((n - j) as f64) / ((j + 1) as f64)).collect();
        let down: Vec<f64> = (0..n).map(|j| ((j + 1) as f64) / ((n - j) as f64)).collect();
        Ok(Self { coeffs, dcoeffs, ln_binom, ln_binom_prime, up, down, grid: None })
    }

    /// Player count `k` this table evaluates for.
    #[inline]
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// The Bernstein coefficient table `[C(1), …, C(k)]`.
    #[inline]
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// `g(0) = C(1)` — exact, free.
    #[inline]
    pub fn at_zero(&self) -> f64 {
        self.coeffs[0]
    }

    /// `g(1) = C(k)` — exact, free.
    #[inline]
    pub fn at_one(&self) -> f64 {
        *self.coeffs.last().expect("non-empty by construction")
    }

    /// Magnitude scale of the coefficients (used for relative error
    /// bounds): `max_j |C(j)|`, floored at 1.
    pub fn scale(&self) -> f64 {
        self.coeffs.iter().fold(1.0f64, |acc, &c| acc.max(c.abs()))
    }

    /// A scratch buffer sized for this table.
    pub fn scratch(&self) -> GScratch {
        GScratch { pmf: vec![0.0; self.coeffs.len()] }
    }

    /// Exact `g(q)` using caller-owned scratch: `O(k)` flops, two `ln`,
    /// one `exp`, zero allocation. `q` is clamped into `[0, 1]` (callers
    /// wanting range *errors* go through
    /// [`crate::payoff::PayoffContext::g`]).
    pub fn eval_with(&self, scratch: &mut GScratch, q: f64) -> f64 {
        debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
        let q = q.clamp(0.0, 1.0);
        let pmf = &mut scratch.pmf[..self.coeffs.len()];
        fill_pmf(&self.ln_binom, q, pmf);
        kahan_sum(pmf.iter().zip(self.coeffs.iter()).map(|(p, c)| p * c))
    }

    /// Exact `g(q)`; allocates a fresh scratch (convenience — batch and
    /// solver loops should hold a [`GScratch`] and use
    /// [`Self::eval_with`]).
    pub fn eval(&self, q: f64) -> f64 {
        self.eval_with(&mut self.scratch(), q)
    }

    /// Batched exact evaluation into `out` (`out.len() == qs.len()`),
    /// reusing `scratch` across all points.
    pub fn eval_many_with(&self, scratch: &mut GScratch, qs: &[f64], out: &mut [f64]) {
        assert_eq!(qs.len(), out.len(), "eval_many_with: qs/out length mismatch");
        for (slot, &q) in out.iter_mut().zip(qs.iter()) {
            *slot = self.eval_with(scratch, q);
        }
    }

    /// Batched exact evaluation, one internal scratch for the whole slice.
    pub fn eval_many(&self, qs: &[f64]) -> Vec<f64> {
        let mut scratch = self.scratch();
        let mut out = vec![0.0; qs.len()];
        self.eval_many_with(&mut scratch, qs, &mut out);
        out
    }

    /// Throughput-oriented exact `g(q)`: the same start-at-the-mode
    /// Bernstein recurrence, but with pre-divided step factors (no serial
    /// division chain), the dot product fused into the walk (no second
    /// pass, no scratch at all), and plain summation instead of Kahan.
    ///
    /// Results agree with [`Self::eval_with`] to a relative `O(k·ε)`
    /// (≈ 1e-14 at `k = 256`, far inside the 1e-13 contract tested in CI)
    /// but are **not bit-identical** — use this for new bulk workloads,
    /// and `eval_with` where reproducibility against the scalar reference
    /// matters. Roughly 4–5× faster again than `eval_with` at `k = 64`.
    pub fn eval_fused(&self, q: f64) -> f64 {
        debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
        let q = q.clamp(0.0, 1.0);
        let n = self.coeffs.len() - 1;
        if n == 0 || q <= 0.0 {
            return self.coeffs[0];
        }
        if q >= 1.0 {
            return self.coeffs[n];
        }
        let mode = (((n + 1) as f64) * q).floor().min(n as f64) as usize;
        let ln_mode =
            self.ln_binom[mode] + (mode as f64) * q.ln() + ((n - mode) as f64) * (1.0 - q).ln();
        let b_mode = ln_mode.exp();
        let ratio = q / (1.0 - q);
        let inv_ratio = (1.0 - q) / q;
        let mut sum = b_mode * self.coeffs[mode];
        let mut b = b_mode;
        for j in mode..n {
            b = b * self.up[j] * ratio;
            sum += b * self.coeffs[j + 1];
        }
        b = b_mode;
        for j in (0..mode).rev() {
            b = b * self.down[j] * inv_ratio;
            sum += b * self.coeffs[j];
        }
        sum
    }

    /// Batched [`Self::eval_fused`] into `out` (`out.len() == qs.len()`).
    pub fn eval_fused_many_into(&self, qs: &[f64], out: &mut [f64]) {
        assert_eq!(qs.len(), out.len(), "eval_fused_many_into: qs/out length mismatch");
        for (slot, &q) in out.iter_mut().zip(qs.iter()) {
            *slot = self.eval_fused(q);
        }
    }

    /// Exact derivative `g'(q)` with caller-owned scratch — bit-identical
    /// to [`crate::payoff::PayoffContext::g_prime`].
    pub fn eval_prime_with(&self, scratch: &mut GScratch, q: f64) -> f64 {
        let n = self.coeffs.len() - 1;
        if n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let pmf = &mut scratch.pmf[..n];
        fill_pmf(&self.ln_binom_prime, q, pmf);
        // g'(q) = n Σ_i b_{i,n-1}(q) (C(i+2) − C(i+1)), same accumulation
        // order as the scalar reference.
        let mut acc = 0.0;
        for (b, d) in pmf.iter().zip(self.dcoeffs.iter()) {
            acc += b * d;
        }
        n as f64 * acc
    }

    /// Exact derivative `g'(q)`; allocates a fresh scratch.
    pub fn eval_prime(&self, q: f64) -> f64 {
        self.eval_prime_with(&mut self.scratch(), q)
    }

    /// Batched exact derivatives into `out`.
    pub fn eval_prime_many_with(&self, scratch: &mut GScratch, qs: &[f64], out: &mut [f64]) {
        assert_eq!(qs.len(), out.len(), "eval_prime_many_with: qs/out length mismatch");
        for (slot, &q) in out.iter_mut().zip(qs.iter()) {
            *slot = self.eval_prime_with(scratch, q);
        }
    }

    /// Attach a dense cubic-Hermite grid so [`Self::eval_fast_with`]
    /// answers in `O(1)` per point. The grid is refined (doubling the
    /// cell count) until the error *measured at every cell midpoint* —
    /// where the Hermite error kernel `t²(1−t)²` peaks — is at most
    /// `tol × `[`Self::scale`]. Fails with [`Error::NoConvergence`] if
    /// 2²⁰ cells cannot meet the bound.
    pub fn with_grid(mut self, tol: f64) -> Result<Self> {
        if !(tol.is_finite() && tol > 0.0) {
            return Err(Error::InvalidArgument(format!(
                "grid tolerance must be positive and finite, got {tol}"
            )));
        }
        let target = tol * self.scale();
        let mut scratch = self.scratch();
        // Start near the analytic requirement h·n ≲ (384·tol)^{1/4} and
        // refine on measurement.
        let n = self.coeffs.len() - 1;
        let mut cells = (16 * (n + 1)).next_power_of_two().max(64);
        const MAX_CELLS: usize = 1 << 20;
        loop {
            let nodes = cells + 1;
            let mut ys = vec![0.0; nodes];
            let mut ds = vec![0.0; nodes];
            let h = 1.0 / cells as f64;
            for i in 0..nodes {
                let q = (i as f64 * h).min(1.0);
                ys[i] = self.eval_with(&mut scratch, q);
                ds[i] = self.eval_prime_with(&mut scratch, q);
            }
            let grid = HermiteGrid { ys, ds, cells, measured_error: 0.0 };
            let mut worst = 0.0f64;
            for i in 0..cells {
                let q = (i as f64 + 0.5) * h;
                let err = (grid.eval(q) - self.eval_with(&mut scratch, q)).abs();
                worst = worst.max(err);
            }
            if worst <= target {
                self.grid = Some(HermiteGrid { measured_error: worst, ..grid });
                return Ok(self);
            }
            if cells >= MAX_CELLS {
                return Err(Error::NoConvergence {
                    what: "g-table grid refinement",
                    residual: worst,
                });
            }
            cells *= 2;
        }
    }

    /// Whether an interpolation grid is attached.
    #[inline]
    pub fn has_grid(&self) -> bool {
        self.grid.is_some()
    }

    /// The attached grid's worst error measured at cell midpoints
    /// (absolute), if a grid was built. An estimate of the true bound:
    /// off-midpoint error can exceed it by a small factor (tests budget
    /// 4×).
    pub fn grid_error(&self) -> Option<f64> {
        self.grid.as_ref().map(|g| g.measured_error)
    }

    /// Number of grid cells (0 without a grid).
    pub fn grid_cells(&self) -> usize {
        self.grid.as_ref().map_or(0, |g| g.cells)
    }

    /// `O(1)` interpolated `g(q)` when a grid is attached; falls back to
    /// the exact `O(k)` path otherwise. Both branches share one contract:
    /// `q` within round-off of `[0, 1]` is clamped, debug builds assert
    /// the range.
    pub fn eval_fast_with(&self, scratch: &mut GScratch, q: f64) -> f64 {
        debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
        match &self.grid {
            Some(grid) => grid.eval(q.clamp(0.0, 1.0)),
            None => self.eval_with(scratch, q),
        }
    }

    /// Batched fast evaluation into `out` (grid-backed when available).
    pub fn eval_fast_many_with(&self, scratch: &mut GScratch, qs: &[f64], out: &mut [f64]) {
        assert_eq!(qs.len(), out.len(), "eval_fast_many_with: qs/out length mismatch");
        match &self.grid {
            Some(grid) => {
                for (slot, &q) in out.iter_mut().zip(qs.iter()) {
                    debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
                    *slot = grid.eval(q.clamp(0.0, 1.0));
                }
            }
            None => self.eval_many_with(scratch, qs, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payoff::PayoffContext;
    use crate::policy::{Exclusive, PowerLaw, Sharing, TableCongestion, TwoLevel};
    use crate::value::ValueProfile;

    fn grid_points(count: usize) -> Vec<f64> {
        (0..=count).map(|i| i as f64 / count as f64).collect()
    }

    #[test]
    fn eval_is_bit_identical_to_scalar_g() {
        for c in [
            &Exclusive as &dyn Congestion,
            &Sharing,
            &TwoLevel { c: -0.4 },
            &PowerLaw { beta: 2.5 },
        ] {
            for k in [1usize, 2, 5, 17, 64] {
                let ctx = PayoffContext::new(c, k).unwrap();
                let table = GTable::new(c, k).unwrap();
                let mut scratch = table.scratch();
                for &q in grid_points(257).iter() {
                    let scalar = ctx.g(q).unwrap();
                    let fast = table.eval_with(&mut scratch, q);
                    assert_eq!(
                        scalar.to_bits(),
                        fast.to_bits(),
                        "{} k={k} q={q}: {scalar} vs {fast}",
                        c.name()
                    );
                }
            }
        }
    }

    #[test]
    fn eval_prime_is_bit_identical_to_scalar_g_prime() {
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.25 }] {
            for k in [1usize, 2, 7, 33] {
                let ctx = PayoffContext::new(c, k).unwrap();
                let table = GTable::new(c, k).unwrap();
                let mut scratch = table.scratch();
                for &q in grid_points(101).iter() {
                    let a = ctx.g_prime(q);
                    let b = table.eval_prime_with(&mut scratch, q);
                    assert_eq!(a.to_bits(), b.to_bits(), "{} k={k} q={q}", c.name());
                }
            }
        }
    }

    #[test]
    fn fused_path_matches_reference_to_contract() {
        for c in [
            &Exclusive as &dyn Congestion,
            &Sharing,
            &TwoLevel { c: -0.4 },
            &PowerLaw { beta: 2.5 },
        ] {
            for k in [1usize, 2, 17, 64, 256] {
                let table = GTable::new(c, k).unwrap();
                let mut scratch = table.scratch();
                let tol = 1e-13 * table.scale();
                for &q in grid_points(257).iter() {
                    let reference = table.eval_with(&mut scratch, q);
                    let fused = table.eval_fused(q);
                    assert!(
                        (reference - fused).abs() <= tol,
                        "{} k={k} q={q}: {reference} vs {fused}",
                        c.name()
                    );
                }
            }
        }
    }

    #[test]
    fn fused_many_matches_pointwise_and_checks_len() {
        let table = GTable::new(&Sharing, 24).unwrap();
        let qs = grid_points(63);
        let mut out = vec![0.0; qs.len()];
        table.eval_fused_many_into(&qs, &mut out);
        for (&q, &v) in qs.iter().zip(out.iter()) {
            assert_eq!(v.to_bits(), table.eval_fused(q).to_bits());
        }
    }

    #[test]
    fn endpoints_are_exact() {
        let table = GTable::new(&Sharing, 6).unwrap();
        assert_eq!(table.at_zero(), 1.0);
        assert_eq!(table.at_one(), 1.0 / 6.0);
        assert_eq!(table.eval(0.0), 1.0);
        assert_eq!(table.eval(1.0), 1.0 / 6.0);
    }

    #[test]
    fn eval_many_matches_pointwise() {
        let table = GTable::new(&Sharing, 12).unwrap();
        let qs = grid_points(99);
        let batch = table.eval_many(&qs);
        for (&q, &v) in qs.iter().zip(batch.iter()) {
            assert_eq!(v.to_bits(), table.eval(q).to_bits(), "q={q}");
        }
    }

    #[test]
    fn single_player_table_is_constant() {
        let table = GTable::new(&Sharing, 1).unwrap();
        let mut s = table.scratch();
        for &q in &[0.0, 0.3, 1.0] {
            assert_eq!(table.eval_with(&mut s, q), 1.0);
            assert_eq!(table.eval_prime_with(&mut s, q), 0.0);
        }
    }

    #[test]
    fn from_coefficients_validates() {
        assert!(GTable::from_coefficients(vec![]).is_err());
        assert!(GTable::from_coefficients(vec![1.0, f64::NAN]).is_err());
        assert!(GTable::from_coefficients(vec![1.0, f64::INFINITY]).is_err());
        // Scaled (C(1) ≠ 1) tables are allowed here.
        let t = GTable::from_coefficients(vec![1e9, 5e8, 0.0]).unwrap();
        assert_eq!(t.eval(0.0), 1e9);
        assert_eq!(t.scale(), 1e9);
    }

    #[test]
    fn grid_meets_error_bound() {
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.4 }] {
            for k in [2usize, 16, 64] {
                let table = GTable::new(c, k).unwrap().with_grid(1e-12).unwrap();
                assert!(table.has_grid());
                assert!(table.grid_error().unwrap() <= 1e-12 * table.scale());
                let mut scratch = table.scratch();
                // Off-midpoint sample points (not used during refinement).
                for i in 0..400 {
                    let q = (i as f64 + 0.37) / 400.0;
                    let exact = table.eval_with(&mut scratch, q);
                    let interp = table.eval_fast_with(&mut scratch, q);
                    assert!(
                        (exact - interp).abs() <= 4.0 * 1e-12 * table.scale(),
                        "{} k={k} q={q}: exact {exact} interp {interp}",
                        c.name()
                    );
                }
            }
        }
    }

    #[test]
    fn grid_is_exact_at_nodes_and_endpoints() {
        let table = GTable::new(&Sharing, 8).unwrap().with_grid(1e-12).unwrap();
        let mut s = table.scratch();
        assert_eq!(table.eval_fast_with(&mut s, 0.0), table.eval_with(&mut s, 0.0));
        assert_eq!(table.eval_fast_with(&mut s, 1.0), table.eval_with(&mut s, 1.0));
    }

    #[test]
    fn grid_rejects_bad_tolerance() {
        let table = GTable::new(&Sharing, 4).unwrap();
        assert!(table.clone().with_grid(0.0).is_err());
        assert!(table.with_grid(f64::NAN).is_err());
    }

    #[test]
    fn fast_eval_without_grid_falls_back_to_exact() {
        let table = GTable::new(&Sharing, 9).unwrap();
        let mut s = table.scratch();
        assert_eq!(
            table.eval_fast_with(&mut s, 0.42).to_bits(),
            table.eval_with(&mut s, 0.42).to_bits()
        );
    }

    #[test]
    fn table_congestion_roundtrip() {
        let policy = TableCongestion::new(vec![1.0, 0.5, 0.2, 0.2], "custom").unwrap();
        let ctx = PayoffContext::new(&policy, 4).unwrap();
        let table = GTable::new(&policy, 4).unwrap();
        for &q in grid_points(50).iter() {
            assert_eq!(ctx.g(q).unwrap().to_bits(), table.eval(q).to_bits());
        }
    }

    #[test]
    fn kernel_speeds_site_value_identity() {
        // ν(x) = f(x)·g(p(x)) through the batched path equals the scalar
        // definition.
        let f = ValueProfile::zipf(30, 1.0, 1.0).unwrap();
        let ctx = PayoffContext::new(&Sharing, 8).unwrap();
        let p = crate::strategy::Strategy::proportional(f.values()).unwrap();
        let nu = ctx.site_values(&f, &p).unwrap();
        for (x, &v) in nu.iter().enumerate() {
            let expect = f.value(x) * ctx.g(p.prob(x)).unwrap();
            assert_eq!(v.to_bits(), expect.to_bits(), "site {x}");
        }
    }
}
