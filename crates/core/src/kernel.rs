//! Batched evaluation kernel for the congestion response `g_C`.
//!
//! Everything in this workspace — site values `ν_p(x) = f(x)·g_C(p(x))`
//! (Eq. 2–3), IFD water-filling, welfare gradients, replicator dynamics,
//! and every experiment binary — bottoms out in the Bernstein-form sum
//! `g_C(q) = Σ_{j=0}^{k−1} C(j+1)·b_{j,k−1}(q)`. The scalar reference path
//! ([`crate::payoff::PayoffContext::g`]) rebuilds the binomial PMF from
//! scratch on every call, which costs `O(k)` *logarithm evaluations* per
//! point (three `ln_factorial` walks to seed the start-at-the-mode
//! recurrence) plus a fresh allocation. A parameter sweep over a 1k-point
//! grid at `k = 64` redoes that identical setup work millions of times.
//!
//! [`GTable`] hoists the per-`(C, k)` work out of the loop:
//!
//! * **Setup, once, `O(k)`** — the log-binomial rows `ln C(k−1, j)` (for
//!   `g`) and `ln C(k−2, j)` (for `g'`), built from a shared prefix-sum
//!   `ln`-factorial table, plus the forward differences
//!   `C(j+2) − C(j+1)` that are the Bernstein coefficients of `g'`.
//! * **Per point, `O(k)`, allocation-free** — two `ln` calls and one
//!   `exp` seed the PMF at its mode; the up/down ratio recurrence fills a
//!   caller-owned [`GScratch`]; a Kahan dot against the coefficient table
//!   finishes. The float operations are *exactly* those of the scalar
//!   path, so results are **bit-identical** to `PayoffContext::g` — the
//!   fast path cannot silently diverge.
//! * **Per point, `O(k)`, fused** — [`GTable::eval_fused`] trades bit
//!   identity for throughput: pre-divided recurrence factors (no serial
//!   division chain) and the coefficient dot product fused into the
//!   Bernstein walk. Agrees with the reference to `O(k·ε)` ≈ 1e-14 and
//!   needs no scratch at all.
//! * **Per point, `O(1)`, optional** — [`GTable::with_grid`] densifies
//!   `g` onto a uniform cubic-Hermite grid (exact values *and* exact
//!   derivatives at the nodes), refined until the measured interpolation
//!   error is below a caller-supplied bound (≤ 1e-12 of the coefficient
//!   scale by default). Grid evaluation is a table lookup plus a cubic —
//!   independent of `k`.
//!
//! The degree-raising view: `b_{j,n}` satisfies the ratio recurrence
//! `b_{j+1,n}(q) = b_{j,n}(q)·(n−j)/(j+1)·q/(1−q)`, which walks the whole
//! Bernstein row from a single seeded term without touching a factorial.
//!
//! ## The policy-batched sibling: [`GBatch`]
//!
//! `GTable` amortizes per-`(C, k)` setup across many points of one
//! policy. Multi-policy workloads — SPoA-vs-`k` panels, the mechanism
//! catalog in `dispersal-mech`, response-grid sweeps — evaluate the *same*
//! q-grid against *many* policies, and the Bernstein basis column
//! `b_{j,k−1}(q)` they all dot against depends only on `(q, k)`.
//! [`GBatch`] stores the policies as a policy-major coefficient matrix
//! (rows zero-padded to a small block width), builds that shared column
//! once per point, and finishes every policy with a blocked matrix–vector
//! product — a GEMM, the exact shape a wgpu/CUDA backend consumes. Mixed
//! player counts split into one `GBatch` per `k` (*k-tiles*). Like
//! `GTable` it has a bit-identical reference mode ([`GBatch::eval_with`])
//! and a fused throughput mode ([`GBatch::eval_fused_into`]).
//!
//! ## The heterogeneous sibling: [`PbTable`]
//!
//! `GTable` covers the *symmetric* case — every opponent visits with the
//! same probability `q`, so the occupancy is binomial. The ESS conditions
//! need the *heterogeneous* case: the number of opponents at a site is
//! Poisson–binomial over a profile `(p₁, …, p_{k−1})` of per-opponent
//! visit probabilities. [`PbTable`] hoists that work the same way:
//!
//! * **Setup, once per profile equivalence class, `O(k²)`** — the exact
//!   convolution DP of [`crate::numerics::poisson_binomial_pmf`], built
//!   incrementally by [`PbTable::push`] (bit-identical to the one-shot
//!   DP); [`PbCache`] keys finished tables by the *sorted* probability
//!   multiset so every site (and every mutant probe) sharing an opponent
//!   profile reuses one table.
//! * **Rank update, `O(k)`** — [`PbTable::remove`] deconvolves one
//!   Bernoulli factor (direction-chosen backward/forward recurrence, both
//!   contractive), and [`PbTable::replace`] swaps one opponent's
//!   probability. Walking an ESS ledger level `ℓ → ℓ+1` is one `replace`
//!   per site class instead of a fresh `O(k²)` DP.
//! * **Per query, `O(k)`, allocation-free** — [`PbTable::expectation`]
//!   dots the PMF against a coefficient table with the same Kahan
//!   accumulation as the scalar reference.

pub mod cache;

use crate::error::{Error, Result};
use crate::numerics::{convolve_bernoulli, kahan_sum};
use crate::policy::Congestion;
use cache::{CacheStats, SharedCache};
use std::sync::Arc;

/// Caller-owned scratch buffer for allocation-free kernel evaluation.
///
/// One scratch serves both `g` and `g'` queries of the table it was
/// created for (it is sized for the larger row). Scratches are cheap to
/// create but are meant to be reused across a whole batch, shard, or
/// solver run; evaluation needs `&mut` access, so give each worker its
/// own via [`GTable::scratch`] rather than contending over one.
#[derive(Debug, Clone)]
pub struct GScratch {
    pmf: Vec<f64>,
}

/// Grid configuration for `O(1)` interpolated `g`-evaluation — the single
/// configuration surface shared by [`GTable::with_spec`],
/// [`crate::payoff::PayoffContext::with_spec`], and the sweep-layer grid
/// caches. Tolerance validation lives in exactly one place
/// ([`GridSpec::validate`]); every grid-configuring entry point reports
/// the same [`Error::InvalidTolerance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GridSpec {
    /// No interpolation grid: every evaluation runs the exact `O(k)`
    /// kernel (and [`GTable::eval_fast_with`] stays bit-identical to the
    /// scalar reference).
    Exact,
    /// Uniform cubic-Hermite grid, refined by cell doubling until the
    /// midpoint-measured error is at most `tol ×` [`GTable::scale`].
    Interpolated {
        /// Relative error bound for the refinement loop.
        tol: f64,
    },
    /// Error-equidistributing non-uniform cubic-Hermite grid: adaptive
    /// bisection refines where `g` is stiff (the near-exclusive boundary
    /// layer whose width shrinks like `1/k`) and leaves flat regions
    /// coarse, so large-`k` builds (`k → 10⁶`) meet `tol` with a few
    /// hundred nodes instead of the uniform path's `2²⁰`-cell blowup.
    NonUniform {
        /// Relative error bound for the subdivision loop.
        tol: f64,
    },
}

impl GridSpec {
    /// Validate the spec — the one typed tolerance-validation path. A
    /// non-finite or non-positive tolerance is [`Error::InvalidTolerance`];
    /// [`GridSpec::Exact`] is always valid.
    pub fn validate(&self) -> Result<()> {
        match *self {
            GridSpec::Exact => Ok(()),
            GridSpec::Interpolated { tol } | GridSpec::NonUniform { tol } => {
                if !(tol.is_finite() && tol > 0.0) {
                    return Err(Error::InvalidTolerance { tol });
                }
                Ok(())
            }
        }
    }

    /// Stable cache-key encoding `(discriminant, tol bits)` so grid caches
    /// key spec-distinct builds separately (`Exact` keys as `(0, 0)`).
    pub fn key_bits(&self) -> (u8, u64) {
        match *self {
            GridSpec::Exact => (0, 0),
            GridSpec::Interpolated { tol } => (1, tol.to_bits()),
            GridSpec::NonUniform { tol } => (2, tol.to_bits()),
        }
    }
}

/// Evaluate the cubic Hermite basis at local coordinate `t ∈ [0, 1]` with
/// node values `y0, y1` and *pre-scaled* node derivatives `d0, d1`
/// (already multiplied by the cell width). Shared by the uniform and
/// non-uniform grids and by the refinement loops, so every path runs the
/// exact same operation sequence.
#[inline]
fn hermite_eval(t: f64, y0: f64, d0: f64, y1: f64, d1: f64) -> f64 {
    let t2 = t * t;
    let t3 = t2 * t;
    let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
    let h10 = t3 - 2.0 * t2 + t;
    let h01 = -2.0 * t3 + 3.0 * t2;
    let h11 = t3 - t2;
    h00 * y0 + h10 * d0 + h01 * y1 + h11 * d1
}

/// Dense cubic-Hermite interpolation grid over `[0, 1]` (values and
/// derivatives at `cells + 1` uniform nodes).
#[derive(Debug, Clone)]
struct HermiteGrid {
    ys: Vec<f64>,
    ds: Vec<f64>,
    cells: usize,
    measured_error: f64,
}

impl HermiteGrid {
    /// Evaluate the cubic Hermite interpolant at `q ∈ [0, 1]`.
    fn eval(&self, q: f64) -> f64 {
        let cells = self.cells as f64;
        let scaled = q * cells;
        let cell = (scaled as usize).min(self.cells - 1);
        let t = scaled - cell as f64;
        let h = 1.0 / cells;
        let (y0, y1) = (self.ys[cell], self.ys[cell + 1]);
        let (d0, d1) = (self.ds[cell] * h, self.ds[cell + 1] * h);
        hermite_eval(t, y0, d0, y1, d1)
    }
}

/// Non-uniform cubic-Hermite grid over `[0, 1]`: `xs` holds the ascending
/// node positions produced by adaptive bisection, with exact values and
/// derivatives at every node. Cell lookup is a binary search.
#[derive(Debug, Clone)]
struct NonUniformGrid {
    xs: Vec<f64>,
    ys: Vec<f64>,
    ds: Vec<f64>,
    measured_error: f64,
}

impl NonUniformGrid {
    /// Evaluate the interpolant at `q ∈ [0, 1]`.
    fn eval(&self, q: f64) -> f64 {
        let last = self.xs.len() - 2;
        let cell = match self.xs.binary_search_by(|x| x.total_cmp(&q)) {
            Ok(i) => i.min(last),
            Err(i) => i.saturating_sub(1).min(last),
        };
        let h = self.xs[cell + 1] - self.xs[cell];
        let t = (q - self.xs[cell]) / h;
        let (y0, y1) = (self.ys[cell], self.ys[cell + 1]);
        let (d0, d1) = (self.ds[cell] * h, self.ds[cell + 1] * h);
        hermite_eval(t, y0, d0, y1, d1)
    }

    /// Number of cells (`nodes − 1`).
    fn cells(&self) -> usize {
        self.xs.len() - 1
    }
}

/// The grid actually attached to a [`GTable`] — uniform (the
/// [`GridSpec::Interpolated`] build) or non-uniform
/// ([`GridSpec::NonUniform`]).
#[derive(Debug, Clone)]
enum GridKind {
    Uniform(HermiteGrid),
    NonUniform(NonUniformGrid),
}

impl GridKind {
    fn eval(&self, q: f64) -> f64 {
        match self {
            GridKind::Uniform(g) => g.eval(q),
            GridKind::NonUniform(g) => g.eval(q),
        }
    }

    fn cells(&self) -> usize {
        match self {
            GridKind::Uniform(g) => g.cells,
            GridKind::NonUniform(g) => g.cells(),
        }
    }

    fn measured_error(&self) -> f64 {
        match self {
            GridKind::Uniform(g) => g.measured_error,
            GridKind::NonUniform(g) => g.measured_error,
        }
    }
}

/// Precomputed batched evaluator for one congestion response `g_C` at a
/// fixed player count `k` (polynomial degree `n = k − 1`).
///
/// See the [module docs](self) for the design; the practical contract is:
///
/// * [`GTable::eval_with`] / [`GTable::eval_many_with`] are bit-identical
///   to [`crate::payoff::PayoffContext::g`] on `[0, 1]` and allocation-free
///   given a reused [`GScratch`];
/// * [`GTable::eval_prime_with`] is bit-identical to
///   [`crate::payoff::PayoffContext::g_prime`];
/// * after [`GTable::with_grid`], [`GTable::eval_fast_with`] answers in
///   `O(1)`; [`GTable::grid_error`] reports the error *measured at cell
///   midpoints* (where the cubic-Hermite error kernel peaks for smooth
///   `g`) — treat it as an estimate and budget a small multiple (the
///   tests use 4×) at arbitrary `q`.
#[derive(Debug, Clone)]
pub struct GTable {
    /// Bernstein coefficients of `g`: `coeffs[j] = C(j + 1)`, degree
    /// `n = coeffs.len() − 1`.
    coeffs: Vec<f64>,
    /// Forward differences `coeffs[j+1] − coeffs[j]` — up to the factor
    /// `n`, the Bernstein coefficients of `g'` (length `n`).
    dcoeffs: Vec<f64>,
    /// `ln C(n, j)` for `j = 0..=n`.
    ln_binom: Vec<f64>,
    /// `ln C(n−1, j)` for `j = 0..n` (empty when `n = 0`).
    ln_binom_prime: Vec<f64>,
    /// Pre-divided upward recurrence factors `(n − j)/(j + 1)` for the
    /// fused path (length `n`).
    up: Vec<f64>,
    /// Pre-divided downward recurrence factors `(j + 1)/(n − j)` for the
    /// fused path (length `n`).
    down: Vec<f64>,
    /// Optional dense O(1) interpolation grid (uniform or non-uniform).
    grid: Option<GridKind>,
}

/// Fill `out[0..=n]` with the binomial PMF `P[Bin(n, q) = j]` using the
/// precomputed log-binomial row `ln_binom`. Operation-for-operation the
/// same as [`crate::numerics::binomial_pmf_vector`], with the three
/// `ln_factorial` walks replaced by one table read.
fn fill_pmf(ln_binom: &[f64], q: f64, out: &mut [f64]) {
    let n = out.len() - 1;
    if q <= 0.0 {
        out.fill(0.0);
        out[0] = 1.0;
        return;
    }
    if q >= 1.0 {
        out.fill(0.0);
        out[n] = 1.0;
        return;
    }
    let (mode, b_mode) = seed_mode(ln_binom, n, q);
    out[mode] = b_mode;
    let ratio = q / (1.0 - q);
    for j in mode..n {
        out[j + 1] = out[j] * ((n - j) as f64) / ((j + 1) as f64) * ratio;
    }
    for j in (0..mode).rev() {
        out[j] = out[j + 1] * ((j + 1) as f64) / ((n - j) as f64) / ratio;
    }
}

/// Seed a degree-`n` Bernstein/PMF walk at its mode for `q ∈ (0, 1)`:
/// `(mode, b_mode)` from the precomputed log-binomial row. Every walk in
/// this module — [`fill_pmf`], [`GTable::eval_fused`], and [`GBatch`]'s
/// shared basis column — starts from this exact operation sequence, which
/// is what keeps their cross-contracts (bitwise / 1e-13) stable.
#[inline]
fn seed_mode(ln_row: &[f64], n: usize, q: f64) -> (usize, f64) {
    let mode = (((n + 1) as f64) * q).floor().min(n as f64) as usize;
    let ln_mode = ln_row[mode] + (mode as f64) * q.ln() + ((n - mode) as f64) * (1.0 - q).ln();
    (mode, ln_mode.exp())
}

/// Pre-divided fused-walk ratio factors for degree `n`:
/// upward `(n−j)/(j+1)` and downward `(j+1)/(n−j)`, `j = 0..n`.
fn fused_factors(n: usize) -> (Vec<f64>, Vec<f64>) {
    let up = (0..n).map(|j| ((n - j) as f64) / ((j + 1) as f64)).collect();
    let down = (0..n).map(|j| ((j + 1) as f64) / ((n - j) as f64)).collect();
    (up, down)
}

/// Reject non-finite congestion coefficients (shared by [`GTable`] and
/// [`GBatch`] construction so both report the same error).
fn check_finite_coeffs(coeffs: &[f64]) -> Result<()> {
    if let Some((j, &v)) = coeffs.iter().enumerate().find(|(_, v)| !v.is_finite()) {
        return Err(Error::InvalidArgument(format!(
            "congestion coefficient C({}) = {v} is not finite",
            j + 1
        )));
    }
    Ok(())
}

/// Reject mismatched batched-slice lengths with the typed error path.
fn check_len(what: &'static str, expected: usize, got: usize) -> Result<()> {
    if expected != got {
        return Err(Error::LengthMismatch { what, expected, got });
    }
    Ok(())
}

/// `ln C(n, j)` for `j = 0..=n`, built from one prefix-sum pass over
/// `ln(i)`. The prefix runs through the same incremental
/// [`crate::numerics::Kahan`] accumulator as
/// [`crate::numerics::ln_factorial`]'s compensated sum, so every table
/// entry is bit-identical to `ln_binomial(n, j)`.
fn ln_binom_row(n: usize) -> Vec<f64> {
    let mut ln_fact = vec![0.0; n + 1];
    let mut acc = crate::numerics::Kahan::new();
    for (i, slot) in ln_fact.iter_mut().enumerate().skip(2) {
        acc.push((i as f64).ln());
        *slot = acc.value();
    }
    (0..=n).map(|j| ln_fact[n] - ln_fact[j] - ln_fact[n - j]).collect()
}

impl GTable {
    /// Build a table for policy `c` and `k ≥ 1` players, validating the
    /// congestion axioms (`C(1) = 1`, non-increasing).
    pub fn new(c: &dyn Congestion, k: usize) -> Result<Self> {
        let coeffs = crate::policy::validate_congestion(c, k)?;
        Self::from_coefficients(coeffs)
    }

    /// Build a table directly from the coefficient vector
    /// `[C(1), …, C(k)]` without the `C(1) = 1` normalization check —
    /// the entry point for scaled policies (e.g. reward-designed tables
    /// with `C(1) = 10⁹`). Entries must be finite and the vector
    /// non-empty.
    pub fn from_coefficients(coeffs: Vec<f64>) -> Result<Self> {
        if coeffs.is_empty() {
            return Err(Error::InvalidPlayerCount { k: 0 });
        }
        check_finite_coeffs(&coeffs)?;
        let n = coeffs.len() - 1;
        let dcoeffs: Vec<f64> = coeffs.windows(2).map(|w| w[1] - w[0]).collect();
        let ln_binom = ln_binom_row(n);
        let ln_binom_prime = if n == 0 { Vec::new() } else { ln_binom_row(n - 1) };
        let (up, down) = fused_factors(n);
        Ok(Self { coeffs, dcoeffs, ln_binom, ln_binom_prime, up, down, grid: None })
    }

    /// Player count `k` this table evaluates for.
    #[inline]
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// The Bernstein coefficient table `[C(1), …, C(k)]`.
    #[inline]
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// `g(0) = C(1)` — exact, free.
    #[inline]
    pub fn at_zero(&self) -> f64 {
        self.coeffs[0]
    }

    /// `g(1) = C(k)` — exact, free.
    #[inline]
    pub fn at_one(&self) -> f64 {
        // Non-empty by construction (k >= 1 is validated at build time).
        self.coeffs[self.coeffs.len() - 1]
    }

    /// Magnitude scale of the coefficients (used for relative error
    /// bounds): `max_j |C(j)|`, floored at 1.
    pub fn scale(&self) -> f64 {
        self.coeffs.iter().fold(1.0f64, |acc, &c| acc.max(c.abs()))
    }

    /// A scratch buffer sized for this table.
    pub fn scratch(&self) -> GScratch {
        GScratch { pmf: vec![0.0; self.coeffs.len()] }
    }

    /// Exact `g(q)` using caller-owned scratch: `O(k)` flops, two `ln`,
    /// one `exp`, zero allocation. `q` is clamped into `[0, 1]` (callers
    /// wanting range *errors* go through
    /// [`crate::payoff::PayoffContext::g`]).
    pub fn eval_with(&self, scratch: &mut GScratch, q: f64) -> f64 {
        debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
        let q = q.clamp(0.0, 1.0);
        let pmf = &mut scratch.pmf[..self.coeffs.len()];
        fill_pmf(&self.ln_binom, q, pmf);
        kahan_sum(pmf.iter().zip(self.coeffs.iter()).map(|(p, c)| p * c))
    }

    /// Exact `g(q)`; allocates a fresh scratch (convenience — batch and
    /// solver loops should hold a [`GScratch`] and use
    /// [`Self::eval_with`]).
    pub fn eval(&self, q: f64) -> f64 {
        self.eval_with(&mut self.scratch(), q)
    }

    /// Batched exact evaluation into `out` (`out.len() == qs.len()`),
    /// reusing `scratch` across all points. A length mismatch is reported
    /// as [`Error::LengthMismatch`] and leaves `out` untouched.
    pub fn eval_many_with(
        &self,
        scratch: &mut GScratch,
        qs: &[f64],
        out: &mut [f64],
    ) -> Result<()> {
        check_len("GTable::eval_many_with", qs.len(), out.len())?;
        for (slot, &q) in out.iter_mut().zip(qs.iter()) {
            *slot = self.eval_with(scratch, q);
        }
        Ok(())
    }

    /// Batched exact evaluation, one internal scratch for the whole slice.
    pub fn eval_many(&self, qs: &[f64]) -> Vec<f64> {
        let mut scratch = self.scratch();
        qs.iter().map(|&q| self.eval_with(&mut scratch, q)).collect()
    }

    /// Throughput-oriented exact `g(q)`: the same start-at-the-mode
    /// Bernstein recurrence, but with pre-divided step factors (no serial
    /// division chain), the dot product fused into the walk (no second
    /// pass, no scratch at all), and plain summation instead of Kahan.
    ///
    /// Results agree with [`Self::eval_with`] to a relative `O(k·ε)`
    /// (≈ 1e-14 at `k = 256`, far inside the 1e-13 contract tested in CI)
    /// but are **not bit-identical** — use this for new bulk workloads,
    /// and `eval_with` where reproducibility against the scalar reference
    /// matters. Roughly 4–5× faster again than `eval_with` at `k = 64`.
    pub fn eval_fused(&self, q: f64) -> f64 {
        debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
        let q = q.clamp(0.0, 1.0);
        let n = self.coeffs.len() - 1;
        if n == 0 || q <= 0.0 {
            return self.coeffs[0];
        }
        if q >= 1.0 {
            return self.coeffs[n];
        }
        let (mode, b_mode) = seed_mode(&self.ln_binom, n, q);
        let ratio = q / (1.0 - q);
        let inv_ratio = (1.0 - q) / q;
        crate::simd::fused_dot(&self.coeffs, &self.up, &self.down, mode, b_mode, ratio, inv_ratio)
    }

    /// Batched [`Self::eval_fused`] into `out` (`out.len() == qs.len()`);
    /// mismatched lengths are [`Error::LengthMismatch`].
    pub fn eval_fused_many_into(&self, qs: &[f64], out: &mut [f64]) -> Result<()> {
        check_len("GTable::eval_fused_many_into", qs.len(), out.len())?;
        for (slot, &q) in out.iter_mut().zip(qs.iter()) {
            *slot = self.eval_fused(q);
        }
        Ok(())
    }

    /// Exact derivative `g'(q)` with caller-owned scratch — bit-identical
    /// to [`crate::payoff::PayoffContext::g_prime`].
    pub fn eval_prime_with(&self, scratch: &mut GScratch, q: f64) -> f64 {
        let n = self.coeffs.len() - 1;
        if n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let pmf = &mut scratch.pmf[..n];
        fill_pmf(&self.ln_binom_prime, q, pmf);
        // g'(q) = n Σ_i b_{i,n-1}(q) (C(i+2) − C(i+1)), same accumulation
        // order as the scalar reference.
        let mut acc = 0.0;
        for (b, d) in pmf.iter().zip(self.dcoeffs.iter()) {
            acc += b * d;
        }
        n as f64 * acc
    }

    /// Exact derivative `g'(q)`; allocates a fresh scratch.
    pub fn eval_prime(&self, q: f64) -> f64 {
        self.eval_prime_with(&mut self.scratch(), q)
    }

    /// Batched exact derivatives into `out` (`out.len() == qs.len()`);
    /// mismatched lengths are [`Error::LengthMismatch`].
    pub fn eval_prime_many_with(
        &self,
        scratch: &mut GScratch,
        qs: &[f64],
        out: &mut [f64],
    ) -> Result<()> {
        check_len("GTable::eval_prime_many_with", qs.len(), out.len())?;
        for (slot, &q) in out.iter_mut().zip(qs.iter()) {
            *slot = self.eval_prime_with(scratch, q);
        }
        Ok(())
    }

    /// Attach (or detach) an interpolation grid per `spec` — the single
    /// grid-configuration entry point behind [`GridSpec`]:
    ///
    /// * [`GridSpec::Exact`] removes any attached grid;
    /// * [`GridSpec::Interpolated`] builds the uniform cell-doubling grid
    ///   (bit-identical to the historical `with_grid(tol)` build);
    /// * [`GridSpec::NonUniform`] runs adaptive bisection that refines
    ///   only where the Hermite midpoint error exceeds the bound — the
    ///   large-`k` path (`k → 10⁶`), where a uniform grid overruns its
    ///   2²⁰-cell budget resolving a boundary layer of width `O(1/k)`.
    ///
    /// Tolerances are validated once, in [`GridSpec::validate`]
    /// ([`Error::InvalidTolerance`]); a build that cannot meet the bound
    /// within its budget is [`Error::NoConvergence`].
    pub fn with_spec(mut self, spec: GridSpec) -> Result<Self> {
        spec.validate()?;
        match spec {
            GridSpec::Exact => {
                self.grid = None;
                Ok(self)
            }
            GridSpec::Interpolated { tol } => self.build_uniform_grid(tol),
            GridSpec::NonUniform { tol } => {
                let grid = self.build_nonuniform_grid(tol)?;
                self.grid = Some(GridKind::NonUniform(grid));
                Ok(self)
            }
        }
    }

    /// Attach a **uniform** dense cubic-Hermite grid so
    /// [`Self::eval_fast_with`] answers in `O(1)` per point — shorthand
    /// for [`Self::with_spec`] with [`GridSpec::Interpolated`]. The grid
    /// is refined (doubling the cell count) until the error *measured at
    /// every cell midpoint* — where the Hermite error kernel `t²(1−t)²`
    /// peaks — is at most `tol × `[`Self::scale`]. The tolerance is
    /// per-call: sweeps and plotting paths typically pass `1e-9` (cheap
    /// grids), equivalence tests `1e-12`. Fails with
    /// [`Error::NoConvergence`] if 2²⁰ cells cannot meet the bound — at
    /// `k ≳ 10⁴` prefer [`GridSpec::NonUniform`], whose adaptive cells
    /// resolve the boundary layer without the budget blowup.
    pub fn with_grid(self, tol: f64) -> Result<Self> {
        self.with_spec(GridSpec::Interpolated { tol })
    }

    /// The uniform cell-doubling refinement build behind
    /// [`GridSpec::Interpolated`] (`tol` already validated).
    fn build_uniform_grid(mut self, tol: f64) -> Result<Self> {
        let target = tol * self.scale();
        let mut scratch = self.scratch();
        // Start near the analytic requirement h·n ≲ (384·tol)^{1/4} (the
        // uniform-Hermite error bound with |g''''| ≲ n⁴·scale), capped at
        // the legacy 16·(n+1) start so tight-tolerance grids behave
        // exactly as before; loose tolerances (the large-k regime) start
        // far coarser and the measured refinement below guards them.
        let n = self.coeffs.len() - 1;
        let analytic = (n.max(1) as f64) * (384.0 * tol).powf(-0.25);
        let legacy = (16 * (n + 1)) as f64;
        let mut cells = (analytic.min(legacy).max(64.0) as usize).next_power_of_two();
        const MAX_CELLS: usize = 1 << 20;
        loop {
            let nodes = cells + 1;
            let mut ys = vec![0.0; nodes];
            let mut ds = vec![0.0; nodes];
            let h = 1.0 / cells as f64;
            for i in 0..nodes {
                let q = (i as f64 * h).min(1.0);
                ys[i] = self.eval_with(&mut scratch, q);
                ds[i] = self.eval_prime_with(&mut scratch, q);
            }
            let grid = HermiteGrid { ys, ds, cells, measured_error: 0.0 };
            let mut worst = 0.0f64;
            for i in 0..cells {
                let q = (i as f64 + 0.5) * h;
                let err = (grid.eval(q) - self.eval_with(&mut scratch, q)).abs();
                worst = worst.max(err);
            }
            if worst <= target {
                self.grid = Some(GridKind::Uniform(HermiteGrid { measured_error: worst, ..grid }));
                return Ok(self);
            }
            if cells >= MAX_CELLS {
                return Err(Error::NoConvergence {
                    what: "g-table grid refinement",
                    residual: worst,
                });
            }
            cells *= 2;
        }
    }

    /// The adaptive-bisection build behind [`GridSpec::NonUniform`]
    /// (`tol` already validated). Deterministic depth-first subdivision:
    /// each segment is tested at its midpoint against the Hermite
    /// interpolant through its endpoints; failing segments split in two
    /// (midpoint values and derivatives are exact kernel evaluations and
    /// are reused as the children's shared endpoint), passing segments
    /// emit their left endpoint. The left child is processed first, so
    /// nodes come out in ascending order without a sort.
    fn build_nonuniform_grid(&self, tol: f64) -> Result<NonUniformGrid> {
        /// A pending segment: endpoint positions, exact values, exact
        /// derivatives.
        struct Seg {
            x0: f64,
            y0: f64,
            d0: f64,
            x1: f64,
            y1: f64,
            d1: f64,
        }
        /// Node budget: a backstop far above any practical build (the
        /// k = 10⁶ boundary layer needs a few hundred nodes at 1e-9).
        const MAX_NODES: usize = 1 << 16;
        /// Narrowest cell the subdivision may produce before declaring
        /// non-convergence (the error is then round-off-dominated).
        const MIN_WIDTH: f64 = 1e-12;
        let target = tol * self.scale();
        let mut scratch = self.scratch();
        let y_end = self.eval_with(&mut scratch, 1.0);
        let d_end = self.eval_prime_with(&mut scratch, 1.0);
        let mut stack = vec![Seg {
            x0: 0.0,
            y0: self.eval_with(&mut scratch, 0.0),
            d0: self.eval_prime_with(&mut scratch, 0.0),
            x1: 1.0,
            y1: y_end,
            d1: d_end,
        }];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut ds = Vec::new();
        let mut worst = 0.0f64;
        while let Some(seg) = stack.pop() {
            let h = seg.x1 - seg.x0;
            let m = 0.5 * (seg.x0 + seg.x1);
            let ym = self.eval_with(&mut scratch, m);
            let interp = hermite_eval(0.5, seg.y0, seg.d0 * h, seg.y1, seg.d1 * h);
            let err = (interp - ym).abs();
            if err <= target || h <= MIN_WIDTH {
                if err > target {
                    return Err(Error::NoConvergence {
                        what: "non-uniform g-table grid refinement",
                        residual: err,
                    });
                }
                worst = worst.max(err);
                xs.push(seg.x0);
                ys.push(seg.y0);
                ds.push(seg.d0);
                if xs.len() > MAX_NODES {
                    return Err(Error::NoConvergence {
                        what: "non-uniform g-table grid refinement",
                        residual: worst,
                    });
                }
            } else {
                let dm = self.eval_prime_with(&mut scratch, m);
                // Push right first so the left child pops (and emits)
                // first — ascending node order by construction.
                stack.push(Seg { x0: m, y0: ym, d0: dm, x1: seg.x1, y1: seg.y1, d1: seg.d1 });
                stack.push(Seg { x0: seg.x0, y0: seg.y0, d0: seg.d0, x1: m, y1: ym, d1: dm });
            }
        }
        xs.push(1.0);
        ys.push(y_end);
        ds.push(d_end);
        Ok(NonUniformGrid { xs, ys, ds, measured_error: worst })
    }

    /// Whether an interpolation grid is attached.
    #[inline]
    pub fn has_grid(&self) -> bool {
        self.grid.is_some()
    }

    /// The attached grid's worst error measured at cell midpoints
    /// (absolute), if a grid was built. An estimate of the true bound:
    /// off-midpoint error can exceed it by a small factor (tests budget
    /// 4×).
    pub fn grid_error(&self) -> Option<f64> {
        self.grid.as_ref().map(|g| g.measured_error())
    }

    /// Number of grid cells (0 without a grid). For a non-uniform grid
    /// this is the node count minus one.
    pub fn grid_cells(&self) -> usize {
        self.grid.as_ref().map_or(0, |g| g.cells())
    }

    /// `O(1)` interpolated `g(q)` when a grid is attached; falls back to
    /// the exact `O(k)` path otherwise. Both branches share one contract:
    /// `q` within round-off of `[0, 1]` is clamped, debug builds assert
    /// the range.
    pub fn eval_fast_with(&self, scratch: &mut GScratch, q: f64) -> f64 {
        debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
        match &self.grid {
            Some(grid) => grid.eval(q.clamp(0.0, 1.0)),
            None => self.eval_with(scratch, q),
        }
    }

    /// Batched fast evaluation into `out` (grid-backed when available);
    /// mismatched lengths are [`Error::LengthMismatch`].
    pub fn eval_fast_many_with(
        &self,
        scratch: &mut GScratch,
        qs: &[f64],
        out: &mut [f64],
    ) -> Result<()> {
        check_len("GTable::eval_fast_many_with", qs.len(), out.len())?;
        match &self.grid {
            Some(grid) => {
                for (slot, &q) in out.iter_mut().zip(qs.iter()) {
                    debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
                    *slot = grid.eval(q.clamp(0.0, 1.0));
                }
                Ok(())
            }
            None => self.eval_many_with(scratch, qs, out),
        }
    }
}

/// Row-block width of the policy-major GEMM in [`GBatch`]: the coefficient
/// matrix is padded with zero rows to a multiple of this, so the inner
/// product always runs a full block of independent accumulators (ILP
/// instead of one serial add chain) and the row loop needs no scalar tail.
/// Shared with [`crate::simd`] — one AVX2 register per block row.
const GEMM_BLOCK: usize = crate::simd::GEMV_BLOCK;

/// Structure-of-arrays evaluator for *many* congestion policies sharing
/// one player count `k` — the policy-batched sibling of [`GTable`].
///
/// A [`GTable`] amortizes per-`(C, k)` setup across many `q` points; a
/// `GBatch` amortizes the per-`q` work across many policies. It holds a
/// **policy-major coefficient matrix** (row `r` = policy `r`'s Bernstein
/// coefficients `[C_r(1), …, C_r(k)]`, rows zero-padded to the GEMM block
/// width), and evaluates a whole q-grid against every row at once:
///
/// ```text
///            shared basis column          policy-major matrix
///   q ──►  [b₀(q) … b_{k−1}(q)]ᵀ   ×   [ C₀(1) … C₀(k) ]      ┐
///          (one Bernstein walk,        [ C₁(1) … C₁(k) ]      │ rows =
///           reused by every row)       [   ⋮        ⋮  ]      │ policies
///                                      [ C_{P−1}(1) … ]      ┘
///                                      [ 0 … 0 (padding to a ]
///                                      [ multiple of 4 rows) ]
/// ```
///
/// Per grid point the binomial Bernstein column is built **once** (the
/// same ratio recurrence [`GTable`] uses, into a caller-owned
/// [`GScratch`]), then a blocked matrix–vector product finishes all
/// policies — `O(k)` transcendentals per point *total* instead of per
/// policy, and the dot products run `GEMM_BLOCK` independent accumulator
/// chains. Mixed-`k` workloads split into one `GBatch` per `k` (a
/// *k-tile*), since the Bernstein degree is `k − 1`.
///
/// Two modes, mirroring [`GTable`]'s contract:
///
/// * [`GBatch::eval_with`] / [`GBatch::eval_many_with`] — reference mode:
///   the shared column is the exact binomial PMF of [`GTable::eval_with`]
///   and each row is finished with the same Kahan dot, so every output is
///   **bit-identical** to the corresponding per-policy
///   [`GTable::eval_with`] (and therefore to the scalar
///   [`crate::payoff::PayoffContext::g`]).
/// * [`GBatch::eval_fused_into`] / [`GBatch::eval_fused_many_into`] — the
///   GEMM fast path: the column is built with [`GTable::eval_fused`]'s
///   pre-divided factors and rows are finished with plain blocked dots.
///   Agrees with per-policy `eval_fused` to `O(k·ε)` (CI enforces
///   1e-13 × [`GBatch::scale`] at `k = 256`).
///
/// Derivative variants ([`GBatch::eval_prime_with`],
/// [`GBatch::eval_prime_fused_many_into`]) run the same split over the
/// degree-`(k−2)` basis and the forward-difference rows, for gradient
/// consumers. This layout — shared basis column × policy-major matrix — is
/// the staging ground for a wgpu/CUDA GEMM backend.
#[derive(Debug, Clone)]
pub struct GBatch {
    /// Policy-major coefficient matrix, row-major storage: row `r` lives
    /// at `coeffs[r·k .. (r+1)·k]`; rows `rows..padded` are zero padding.
    coeffs: Vec<f64>,
    /// Row-major forward differences `C_r(j+2) − C_r(j+1)`
    /// (`padded × (k−1)`) — up to the factor `n = k − 1`, the Bernstein
    /// coefficients of each row's `g'`.
    dcoeffs: Vec<f64>,
    /// Real policy count (rows of the matrix that carry data; the
    /// storage above holds `rows.div_ceil(GEMM_BLOCK) · GEMM_BLOCK` rows).
    rows: usize,
    /// Player count shared by every row (columns of the matrix).
    k: usize,
    /// `ln C(k−1, j)` — the shared basis row (identical to the one every
    /// per-policy [`GTable`] at this `k` builds).
    ln_binom: Vec<f64>,
    /// `ln C(k−2, j)` for the derivative basis (empty when `k = 1`).
    ln_binom_prime: Vec<f64>,
    /// Pre-divided upward factors `(n−j)/(j+1)` for the fused basis walk.
    up: Vec<f64>,
    /// Pre-divided downward factors `(j+1)/(n−j)` for the fused walk.
    down: Vec<f64>,
    /// Fused factors for the degree-`(n−1)` derivative basis.
    up_prime: Vec<f64>,
    /// Downward fused factors for the derivative basis.
    down_prime: Vec<f64>,
}

/// Blocked GEMV over the padded policy-major matrix:
/// `out[r] = factor · Σ_j basis[j] · matrix[r·cols + j]` for the `rows`
/// real rows, running [`GEMM_BLOCK`] independent accumulator chains —
/// dispatched through [`crate::simd::gemv_block4`] (AVX2 + FMA when the
/// host has it, the original scalar unroll otherwise).
fn gemv_blocked(
    matrix: &[f64],
    cols: usize,
    rows: usize,
    basis: &[f64],
    factor: f64,
    out: &mut [f64],
) {
    debug_assert_eq!(basis.len(), cols);
    crate::simd::gemv_block4(matrix, cols, rows, basis, factor, out);
}

impl GBatch {
    /// Build a batch over `policies`, all evaluated at the same `k ≥ 1`,
    /// validating the congestion axioms per policy (`C(1) = 1`,
    /// non-increasing) exactly like [`GTable::new`].
    pub fn new(policies: &[&dyn Congestion], k: usize) -> Result<Self> {
        let rows: Vec<Vec<f64>> = policies
            .iter()
            .map(|c| crate::policy::validate_congestion(*c, k))
            .collect::<Result<_>>()?;
        Self::from_rows(rows)
    }

    /// Build a batch directly from coefficient rows `[C(1), …, C(k)]`
    /// (one per policy, no `C(1) = 1` normalization check — the entry
    /// point for scaled/designed tables). Every row must be non-empty,
    /// finite, and the same length; a length disagreement is
    /// [`Error::LengthMismatch`] against the first row.
    pub fn from_rows(rows_in: Vec<Vec<f64>>) -> Result<Self> {
        if rows_in.is_empty() {
            return Err(Error::InvalidArgument("GBatch needs at least one policy row".into()));
        }
        let k = rows_in[0].len();
        if k == 0 {
            return Err(Error::InvalidPlayerCount { k: 0 });
        }
        for row in &rows_in {
            check_len("GBatch::from_rows", k, row.len())?;
            check_finite_coeffs(row)?;
        }
        let rows = rows_in.len();
        let padded = rows.div_ceil(GEMM_BLOCK) * GEMM_BLOCK;
        let n = k - 1;
        let mut coeffs = vec![0.0; padded * k];
        let mut dcoeffs = vec![0.0; padded * n];
        for (r, row) in rows_in.iter().enumerate() {
            coeffs[r * k..(r + 1) * k].copy_from_slice(row);
            for (slot, w) in dcoeffs[r * n..(r + 1) * n].iter_mut().zip(row.windows(2)) {
                *slot = w[1] - w[0];
            }
        }
        let ln_binom = ln_binom_row(n);
        let ln_binom_prime = if n == 0 { Vec::new() } else { ln_binom_row(n - 1) };
        let (up, down) = fused_factors(n);
        let (up_prime, down_prime) = fused_factors(n.saturating_sub(1));
        Ok(Self {
            coeffs,
            dcoeffs,
            rows,
            k,
            ln_binom,
            ln_binom_prime,
            up,
            down,
            up_prime,
            down_prime,
        })
    }

    /// Number of policies (real rows; padding rows are not counted).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Player count `k` shared by every row.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Row `r`'s coefficient table `[C_r(1), …, C_r(k)]`.
    pub fn row_coefficients(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        &self.coeffs[r * self.k..(r + 1) * self.k]
    }

    /// Magnitude scale across the whole batch (for relative error
    /// bounds): `max_{r,j} |C_r(j)|`, floored at 1.
    pub fn scale(&self) -> f64 {
        self.coeffs.iter().fold(1.0f64, |acc, &c| acc.max(c.abs()))
    }

    /// A scratch buffer sized for this batch's shared basis column (one
    /// scratch serves both the value and derivative bases).
    pub fn scratch(&self) -> GScratch {
        GScratch { pmf: vec![0.0; self.k] }
    }

    /// Fill `basis[0..=n]` with the fused-path Bernstein column at `q` —
    /// the exact `b` sequence [`GTable::eval_fused`] walks (pre-divided
    /// factors, no serial division chain).
    fn fill_basis_fused(&self, q: f64, basis: &mut [f64], prime: bool) {
        let n = basis.len() - 1;
        if n == 0 || q <= 0.0 {
            basis.fill(0.0);
            basis[0] = 1.0;
            return;
        }
        if q >= 1.0 {
            basis.fill(0.0);
            basis[n] = 1.0;
            return;
        }
        let (ln_row, up, down) = if prime {
            (&self.ln_binom_prime, &self.up_prime, &self.down_prime)
        } else {
            (&self.ln_binom, &self.up, &self.down)
        };
        let (mode, b_mode) = seed_mode(ln_row, n, q);
        let ratio = q / (1.0 - q);
        let inv_ratio = (1.0 - q) / q;
        crate::simd::fused_fill(basis, up, down, mode, b_mode, ratio, inv_ratio);
    }

    /// Reference mode at one point: `out[r] = g_{C_r}(q)` for every row,
    /// each **bit-identical** to the per-policy [`GTable::eval_with`].
    /// The shared binomial PMF is built once into `scratch`; each row is
    /// finished with the reference Kahan dot. `out.len()` must equal
    /// [`Self::rows`] ([`Error::LengthMismatch`] otherwise).
    pub fn eval_with(&self, scratch: &mut GScratch, q: f64, out: &mut [f64]) -> Result<()> {
        check_len("GBatch::eval_with", self.rows, out.len())?;
        debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
        let q = q.clamp(0.0, 1.0);
        let pmf = &mut scratch.pmf[..self.k];
        fill_pmf(&self.ln_binom, q, pmf);
        for (r, slot) in out.iter_mut().enumerate() {
            let row = &self.coeffs[r * self.k..(r + 1) * self.k];
            *slot = kahan_sum(pmf.iter().zip(row.iter()).map(|(p, c)| p * c));
        }
        Ok(())
    }

    /// Fused GEMM mode at one point: shared pre-divided basis column plus
    /// a blocked matrix–vector product. Agrees with per-policy
    /// [`GTable::eval_fused`] to `O(k·ε)` (≤ 1e-13 × [`Self::scale`],
    /// proptested). `out.len()` must equal [`Self::rows`].
    pub fn eval_fused_into(&self, scratch: &mut GScratch, q: f64, out: &mut [f64]) -> Result<()> {
        check_len("GBatch::eval_fused_into", self.rows, out.len())?;
        debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
        let q = q.clamp(0.0, 1.0);
        let basis = &mut scratch.pmf[..self.k];
        self.fill_basis_fused(q, basis, false);
        gemv_blocked(&self.coeffs, self.k, self.rows, basis, 1.0, out);
        Ok(())
    }

    /// Reference-mode grid evaluation, **policy-major** output:
    /// `out[r · qs.len() + i] = g_{C_r}(qs[i])`, every entry bit-identical
    /// to the per-policy [`GTable::eval_with`]. `out.len()` must be
    /// `rows × qs.len()`.
    pub fn eval_many_with(
        &self,
        scratch: &mut GScratch,
        qs: &[f64],
        out: &mut [f64],
    ) -> Result<()> {
        check_len("GBatch::eval_many_with", self.rows * qs.len(), out.len())?;
        let nq = qs.len();
        for (i, &q) in qs.iter().enumerate() {
            debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
            let q = q.clamp(0.0, 1.0);
            let pmf = &mut scratch.pmf[..self.k];
            fill_pmf(&self.ln_binom, q, pmf);
            for r in 0..self.rows {
                let row = &self.coeffs[r * self.k..(r + 1) * self.k];
                out[r * nq + i] = kahan_sum(pmf.iter().zip(row.iter()).map(|(p, c)| p * c));
            }
        }
        Ok(())
    }

    /// Fused-GEMM grid evaluation, policy-major output
    /// (`out[r · qs.len() + i]`): one basis walk and one blocked product
    /// per grid point for the whole batch. `out.len()` must be
    /// `rows × qs.len()`.
    pub fn eval_fused_many_into(
        &self,
        scratch: &mut GScratch,
        qs: &[f64],
        out: &mut [f64],
    ) -> Result<()> {
        check_len("GBatch::eval_fused_many_into", self.rows * qs.len(), out.len())?;
        let nq = qs.len();
        let mut col = vec![0.0; self.rows];
        for (i, &q) in qs.iter().enumerate() {
            debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
            let q = q.clamp(0.0, 1.0);
            let basis = &mut scratch.pmf[..self.k];
            self.fill_basis_fused(q, basis, false);
            gemv_blocked(&self.coeffs, self.k, self.rows, basis, 1.0, &mut col);
            for (r, &v) in col.iter().enumerate() {
                out[r * nq + i] = v;
            }
        }
        Ok(())
    }

    /// Reference-mode derivatives at one point: `out[r] = g'_{C_r}(q)`,
    /// bit-identical to the per-policy [`GTable::eval_prime_with`].
    pub fn eval_prime_with(&self, scratch: &mut GScratch, q: f64, out: &mut [f64]) -> Result<()> {
        check_len("GBatch::eval_prime_with", self.rows, out.len())?;
        let n = self.k - 1;
        if n == 0 {
            out.fill(0.0);
            return Ok(());
        }
        let q = q.clamp(0.0, 1.0);
        let pmf = &mut scratch.pmf[..n];
        fill_pmf(&self.ln_binom_prime, q, pmf);
        for (r, slot) in out.iter_mut().enumerate() {
            let drow = &self.dcoeffs[r * n..(r + 1) * n];
            let mut acc = 0.0;
            for (b, d) in pmf.iter().zip(drow.iter()) {
                acc += b * d;
            }
            *slot = n as f64 * acc;
        }
        Ok(())
    }

    /// Fused-GEMM derivative grid, policy-major output
    /// (`out[r · qs.len() + i] = g'_{C_r}(qs[i])`) — the gradient-consumer
    /// variant: one degree-`(k−2)` basis walk per point, then a blocked
    /// product against the forward-difference rows scaled by `k − 1`.
    pub fn eval_prime_fused_many_into(
        &self,
        scratch: &mut GScratch,
        qs: &[f64],
        out: &mut [f64],
    ) -> Result<()> {
        check_len("GBatch::eval_prime_fused_many_into", self.rows * qs.len(), out.len())?;
        let n = self.k - 1;
        if n == 0 {
            out.fill(0.0);
            return Ok(());
        }
        let nq = qs.len();
        let mut col = vec![0.0; self.rows];
        for (i, &q) in qs.iter().enumerate() {
            debug_assert!((-1e-12..=1.0 + 1e-12).contains(&q), "q out of range: {q}");
            let q = q.clamp(0.0, 1.0);
            let basis = &mut scratch.pmf[..n];
            self.fill_basis_fused(q, basis, true);
            gemv_blocked(&self.dcoeffs, n, self.rows, basis, n as f64, &mut col);
            for (r, &v) in col.iter().enumerate() {
                out[r * nq + i] = v;
            }
        }
        Ok(())
    }

    /// Convenience fused-GEMM grid evaluation, allocating the policy-major
    /// output matrix (`rows × qs.len()`).
    pub fn eval_grid(&self, qs: &[f64]) -> Vec<f64> {
        let mut scratch = self.scratch();
        let mut out = vec![0.0; self.rows * qs.len()];
        // `out` is sized to rows × qs.len() above, so the only failure
        // mode (a length mismatch) cannot occur; discarding the `Result`
        // keeps this convenience wrapper panic-free.
        self.eval_fused_many_into(&mut scratch, qs, &mut out).unwrap_or_default();
        out
    }
}

/// Normalize a visit probability for table membership: reject non-finite
/// or genuinely out-of-range values, clamp round-off into `[0, 1]`, and
/// canonicalize `-0.0` to `0.0` so bit-keyed lookups are stable.
fn normalize_prob(p: f64) -> Result<f64> {
    if !p.is_finite() || !(-1e-12..=1.0 + 1e-12).contains(&p) {
        return Err(Error::ProbabilityOutOfRange { q: p });
    }
    let p = p.clamp(0.0, 1.0);
    Ok(if p == 0.0 { 0.0 } else { p })
}

/// Exact Poisson–binomial evaluation table over a mutable multiset of
/// Bernoulli visit probabilities — the heterogeneous sibling of
/// [`GTable`].
///
/// Holds the PMF of `Σ_i Bernoulli(pᵢ)` for the probabilities currently
/// in the table. Building from scratch costs one `O(n²)` convolution DP
/// ([`Self::from_probs`], bit-identical to
/// [`crate::numerics::poisson_binomial_pmf`]); after that, opponent-profile
/// edits are `O(n)` rank updates: [`Self::push`] convolves one coin in,
/// [`Self::remove`] deconvolves one out, and [`Self::replace`] swaps one
/// probability for another. Queries ([`Self::expectation`]) are
/// allocation-free `O(n)` Kahan dots against a caller-supplied value table.
///
/// The deconvolution picks the numerically contractive recurrence
/// direction (forward for `p ≤ ½`, backward for `p > ½`, exact
/// shift/truncate for `p ∈ {0, 1}`), so long add/remove walks — e.g. an
/// ESS ledger stepping `k` levels — accumulate only `O(n·ε)` error
/// (≈ 1e-13 at `n = 256`) instead of amplifying.
#[derive(Debug, Clone, Default)]
pub struct PbTable {
    /// PMF of the current multiset: `pmf[j] = P[Σᵢ Xᵢ = j]`,
    /// `j = 0..=probs.len()`.
    pmf: Vec<f64>,
    /// The Bernoulli probabilities currently convolved in (stack order —
    /// the multiset semantics come from lookups by value in
    /// [`Self::remove`]).
    probs: Vec<f64>,
}

impl PbTable {
    /// An empty table (PMF of the empty sum: point mass at 0).
    pub fn new() -> Self {
        Self { pmf: vec![1.0], probs: Vec::new() }
    }

    /// An empty table with capacity reserved for `n` probabilities.
    pub fn with_capacity(n: usize) -> Self {
        let mut pmf = Vec::with_capacity(n + 1);
        pmf.push(1.0);
        Self { pmf, probs: Vec::with_capacity(n) }
    }

    /// Build the table for a probability profile with one `O(n²)` DP.
    /// The result is **bit-identical** to
    /// [`crate::numerics::poisson_binomial_pmf`]`(probs)` — both run the
    /// same [`crate::numerics::convolve_bernoulli`] step sequence.
    pub fn from_probs(probs: &[f64]) -> Result<Self> {
        let mut table = Self::with_capacity(probs.len());
        for &p in probs {
            table.push(p)?;
        }
        Ok(table)
    }

    /// Number of Bernoulli factors currently in the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the table holds no factors (PMF is the point mass at 0).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// The current PMF: `pmf()[j] = P[Σᵢ Xᵢ = j]` for `j = 0..=len()`.
    #[inline]
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }

    /// The probabilities currently convolved in (unspecified order).
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Clear the table back to the empty product.
    pub fn clear(&mut self) {
        self.probs.clear();
        self.pmf.clear();
        self.pmf.push(1.0);
    }

    /// Convolve one `Bernoulli(p)` factor in: `O(n)`. `p` within round-off
    /// of `[0, 1]` is clamped; genuinely out-of-range or non-finite `p` is
    /// rejected with [`Error::ProbabilityOutOfRange`].
    pub fn push(&mut self, p: f64) -> Result<()> {
        let p = normalize_prob(p)?;
        let count = self.probs.len();
        self.pmf.push(0.0);
        convolve_bernoulli(&mut self.pmf, count, p);
        self.probs.push(p);
        Ok(())
    }

    /// Deconvolve one `Bernoulli(p)` factor out: `O(n)`. The probability
    /// must currently be in the table (matched exactly, after the same
    /// clamping as [`Self::push`]); otherwise
    /// [`Error::InvalidArgument`] is returned and the table is unchanged.
    pub fn remove(&mut self, p: f64) -> Result<()> {
        let p = normalize_prob(p)?;
        let Some(pos) = self.probs.iter().position(|q| q.to_bits() == p.to_bits()) else {
            return Err(Error::InvalidArgument(format!(
                "probability {p} is not in the Poisson-binomial table"
            )));
        };
        self.probs.swap_remove(pos);
        let n = self.pmf.len() - 1; // factor count before removal
        if p == 0.0 {
            // conv(rest, Bern(0)) = [rest, 0]: the top entry is exactly 0.
            self.pmf.truncate(n);
        } else if p == 1.0 {
            // conv(rest, Bern(1)) = [0, rest]: shift down one slot.
            self.pmf.copy_within(1..=n, 0);
            self.pmf.truncate(n);
        } else if p <= 0.5 {
            // Forward recurrence, contractive for p <= 1/2:
            // rest[0] = pmf[0]/(1-p); rest[j] = (pmf[j] - rest[j-1]·p)/(1-p).
            let q1 = 1.0 - p;
            self.pmf[0] = (self.pmf[0] / q1).max(0.0);
            for j in 1..n {
                self.pmf[j] = ((self.pmf[j] - self.pmf[j - 1] * p) / q1).max(0.0);
            }
            self.pmf.truncate(n);
        } else {
            // Backward recurrence, contractive for p > 1/2:
            // rest[n-1] = pmf[n]/p; rest[j-1] = (pmf[j] - rest[j]·(1-p))/p.
            // rest[j-1] is staged at slot j (slot j's old value is consumed
            // in the same step), then the block shifts down.
            let q1 = 1.0 - p;
            for j in (1..=n).rev() {
                let rest_j = if j == n { 0.0 } else { self.pmf[j + 1] };
                self.pmf[j] = ((self.pmf[j] - rest_j * q1) / p).max(0.0);
            }
            self.pmf.copy_within(1..=n, 0);
            self.pmf.truncate(n);
        }
        Ok(())
    }

    /// Swap one factor's probability: `remove(old)` then `push(new)`, the
    /// `O(n)` rank update that walks an ESS ledger level. Exact no-op when
    /// `old` and `new` are bit-equal (no round-off is introduced).
    pub fn replace(&mut self, old: f64, new: f64) -> Result<()> {
        let old = normalize_prob(old)?;
        let new = normalize_prob(new)?;
        if old.to_bits() == new.to_bits() {
            // Exact no-op, but keep remove()'s membership contract.
            if !self.probs.iter().any(|q| q.to_bits() == old.to_bits()) {
                return Err(Error::InvalidArgument(format!(
                    "probability {old} is not in the Poisson-binomial table"
                )));
            }
            return Ok(());
        }
        self.remove(old)?;
        self.push(new)
    }

    /// Expectation `E[h(L)]` for the current law `L` and a value table
    /// `h[j]`, `j = 0..=len()` (e.g. a congestion table `C(j+1)`): an
    /// allocation-free Kahan dot with the same accumulation order as the
    /// scalar reference path. `h` may be longer than the PMF; extra
    /// entries are ignored.
    pub fn expectation(&self, h: &[f64]) -> f64 {
        debug_assert!(h.len() >= self.pmf.len(), "value table shorter than PMF");
        kahan_sum(self.pmf.iter().zip(h.iter()).map(|(p, v)| p * v))
    }

    /// Mean of the current law: `Σᵢ pᵢ` evaluated from the PMF.
    pub fn mean(&self) -> f64 {
        kahan_sum(self.pmf.iter().enumerate().map(|(j, &p)| j as f64 * p))
    }
}

/// Cache of [`PbTable`]s keyed by the **sorted** visit-probability
/// multiset: every opponent profile in an equivalence class (same
/// probabilities, any order) shares one `O(n²)` DP setup.
///
/// [`crate::payoff::PayoffContext::heterogeneous_payoff`] uses one cache
/// per call (sites with equal opponent profiles share tables);
/// [`crate::ess::probe_ess_k`] holds one across all mutants so the
/// resident-only baseline profiles are built exactly once.
///
/// Because the DP runs over the *sorted* representative, a cached PMF can
/// differ from an unsorted one-shot DP by the usual commutation round-off
/// (`O(n·ε)`, ≈ 3e-14 at `n = 128`) — far inside the 1e-13 agreement
/// contract tested in CI, but not bit-identical for unsorted profiles.
///
/// Rebased on [`cache::SharedCache`]: lookups take `&self`, return
/// `Arc<PbTable>`, are safe to share across engine worker threads, and
/// the cache is size-bounded ([`PB_CACHE_CAPACITY`] profile classes by
/// default) with deterministic LRU eviction. Eviction only changes
/// *allocation* — a rebuilt class reproduces the identical PMF bits.
#[derive(Debug)]
pub struct PbCache {
    inner: SharedCache<Vec<u64>, PbTable>,
}

/// Default resident bound for [`PbCache`]: distinct profile classes kept
/// warm before least-recently-used classes are evicted. An ESS ledger at
/// `k = 256` touches well under a hundred classes; 1024 keeps every
/// workload in this workspace eviction-free while bounding a daemon's
/// footprint.
pub const PB_CACHE_CAPACITY: usize = 1024;

impl Default for PbCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PbCache {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        Self::with_capacity(PB_CACHE_CAPACITY)
    }

    /// An empty cache holding at most `classes` profile classes
    /// (`0` = unbounded).
    pub fn with_capacity(classes: usize) -> Self {
        PbCache { inner: SharedCache::new(classes) }
    }

    /// The table for `probs`' equivalence class, building it on first
    /// use. The entry-style [`SharedCache::get_or_try_insert_with`] path
    /// builds under the shard lock, so the old insert-then-lookup
    /// "entry missing right after insert" failure mode does not exist:
    /// the only error source is an invalid probability.
    pub fn table(&self, probs: &[f64]) -> Result<Arc<PbTable>> {
        let mut sorted = probs.to_vec();
        sorted.sort_unstable_by(f64::total_cmp);
        let mut key = Vec::with_capacity(sorted.len());
        for &p in &sorted {
            key.push(normalize_prob(p)?.to_bits());
        }
        self.inner.get_or_try_insert_with(key, || PbTable::from_probs(&sorted))
    }

    /// Number of distinct profile classes built so far (cache misses,
    /// including rebuilds after eviction).
    #[inline]
    pub fn builds(&self) -> usize {
        self.inner.stats().misses as usize
    }

    /// Number of lookups served from an existing table.
    #[inline]
    pub fn hits(&self) -> usize {
        self.inner.stats().hits as usize
    }

    /// Number of cached tables.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Uniform hit/miss/eviction snapshot ([`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payoff::PayoffContext;
    use crate::policy::{Exclusive, PowerLaw, Sharing, TableCongestion, TwoLevel};
    use crate::value::ValueProfile;

    fn grid_points(count: usize) -> Vec<f64> {
        (0..=count).map(|i| i as f64 / count as f64).collect()
    }

    #[test]
    fn eval_is_bit_identical_to_scalar_g() {
        for c in [
            &Exclusive as &dyn Congestion,
            &Sharing,
            &TwoLevel { c: -0.4 },
            &PowerLaw { beta: 2.5 },
        ] {
            for k in [1usize, 2, 5, 17, 64] {
                let ctx = PayoffContext::new(c, k).unwrap();
                let table = GTable::new(c, k).unwrap();
                let mut scratch = table.scratch();
                for &q in grid_points(257).iter() {
                    let scalar = ctx.g(q).unwrap();
                    let fast = table.eval_with(&mut scratch, q);
                    assert_eq!(
                        scalar.to_bits(),
                        fast.to_bits(),
                        "{} k={k} q={q}: {scalar} vs {fast}",
                        c.name()
                    );
                }
            }
        }
    }

    #[test]
    fn eval_prime_is_bit_identical_to_scalar_g_prime() {
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.25 }] {
            for k in [1usize, 2, 7, 33] {
                let ctx = PayoffContext::new(c, k).unwrap();
                let table = GTable::new(c, k).unwrap();
                let mut scratch = table.scratch();
                for &q in grid_points(101).iter() {
                    let a = ctx.g_prime(q);
                    let b = table.eval_prime_with(&mut scratch, q);
                    assert_eq!(a.to_bits(), b.to_bits(), "{} k={k} q={q}", c.name());
                }
            }
        }
    }

    #[test]
    fn fused_path_matches_reference_to_contract() {
        for c in [
            &Exclusive as &dyn Congestion,
            &Sharing,
            &TwoLevel { c: -0.4 },
            &PowerLaw { beta: 2.5 },
        ] {
            for k in [1usize, 2, 17, 64, 256] {
                let table = GTable::new(c, k).unwrap();
                let mut scratch = table.scratch();
                let tol = 1e-13 * table.scale();
                for &q in grid_points(257).iter() {
                    let reference = table.eval_with(&mut scratch, q);
                    let fused = table.eval_fused(q);
                    assert!(
                        (reference - fused).abs() <= tol,
                        "{} k={k} q={q}: {reference} vs {fused}",
                        c.name()
                    );
                }
            }
        }
    }

    #[test]
    fn fused_many_matches_pointwise_and_checks_len() {
        let table = GTable::new(&Sharing, 24).unwrap();
        let qs = grid_points(63);
        let mut out = vec![0.0; qs.len()];
        table.eval_fused_many_into(&qs, &mut out).unwrap();
        for (&q, &v) in qs.iter().zip(out.iter()) {
            assert_eq!(v.to_bits(), table.eval_fused(q).to_bits());
        }
    }

    #[test]
    fn many_entry_points_report_length_mismatch_as_typed_error() {
        let table = GTable::new(&Sharing, 8).unwrap();
        let mut scratch = table.scratch();
        let qs = grid_points(10);
        let mut short = vec![0.0; qs.len() - 1];
        let expect_mismatch = |r: Result<()>| match r {
            Err(Error::LengthMismatch { expected, got, .. }) => {
                assert_eq!(expected, qs.len());
                assert_eq!(got, qs.len() - 1);
            }
            other => panic!("expected LengthMismatch, got {other:?}"),
        };
        expect_mismatch(table.eval_many_with(&mut scratch, &qs, &mut short));
        expect_mismatch(table.eval_prime_many_with(&mut scratch, &qs, &mut short));
        expect_mismatch(table.eval_fused_many_into(&qs, &mut short));
        expect_mismatch(table.eval_fast_many_with(&mut scratch, &qs, &mut short));
        // The failed calls must not have touched the output buffer.
        assert!(short.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn endpoints_are_exact() {
        let table = GTable::new(&Sharing, 6).unwrap();
        assert_eq!(table.at_zero(), 1.0);
        assert_eq!(table.at_one(), 1.0 / 6.0);
        assert_eq!(table.eval(0.0), 1.0);
        assert_eq!(table.eval(1.0), 1.0 / 6.0);
    }

    #[test]
    fn eval_many_matches_pointwise() {
        let table = GTable::new(&Sharing, 12).unwrap();
        let qs = grid_points(99);
        let batch = table.eval_many(&qs);
        for (&q, &v) in qs.iter().zip(batch.iter()) {
            assert_eq!(v.to_bits(), table.eval(q).to_bits(), "q={q}");
        }
    }

    #[test]
    fn single_player_table_is_constant() {
        let table = GTable::new(&Sharing, 1).unwrap();
        let mut s = table.scratch();
        for &q in &[0.0, 0.3, 1.0] {
            assert_eq!(table.eval_with(&mut s, q), 1.0);
            assert_eq!(table.eval_prime_with(&mut s, q), 0.0);
        }
    }

    #[test]
    fn from_coefficients_validates() {
        assert!(GTable::from_coefficients(vec![]).is_err());
        assert!(GTable::from_coefficients(vec![1.0, f64::NAN]).is_err());
        assert!(GTable::from_coefficients(vec![1.0, f64::INFINITY]).is_err());
        // Scaled (C(1) ≠ 1) tables are allowed here.
        let t = GTable::from_coefficients(vec![1e9, 5e8, 0.0]).unwrap();
        assert_eq!(t.eval(0.0), 1e9);
        assert_eq!(t.scale(), 1e9);
    }

    #[test]
    fn grid_meets_error_bound() {
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.4 }] {
            for k in [2usize, 16, 64] {
                let table = GTable::new(c, k).unwrap().with_grid(1e-12).unwrap();
                assert!(table.has_grid());
                assert!(table.grid_error().unwrap() <= 1e-12 * table.scale());
                let mut scratch = table.scratch();
                // Off-midpoint sample points (not used during refinement).
                for i in 0..400 {
                    let q = (i as f64 + 0.37) / 400.0;
                    let exact = table.eval_with(&mut scratch, q);
                    let interp = table.eval_fast_with(&mut scratch, q);
                    assert!(
                        (exact - interp).abs() <= 4.0 * 1e-12 * table.scale(),
                        "{} k={k} q={q}: exact {exact} interp {interp}",
                        c.name()
                    );
                }
            }
        }
    }

    #[test]
    fn grid_is_exact_at_nodes_and_endpoints() {
        let table = GTable::new(&Sharing, 8).unwrap().with_grid(1e-12).unwrap();
        let mut s = table.scratch();
        assert_eq!(table.eval_fast_with(&mut s, 0.0), table.eval_with(&mut s, 0.0));
        assert_eq!(table.eval_fast_with(&mut s, 1.0), table.eval_with(&mut s, 1.0));
    }

    #[test]
    fn grid_rejects_bad_tolerance() {
        let table = GTable::new(&Sharing, 4).unwrap();
        assert!(table.clone().with_grid(0.0).is_err());
        assert!(table.with_grid(f64::NAN).is_err());
    }

    #[test]
    fn grid_spec_validation_is_the_single_tolerance_path() {
        assert!(GridSpec::Exact.validate().is_ok());
        assert!(GridSpec::Interpolated { tol: 1e-9 }.validate().is_ok());
        assert!(GridSpec::NonUniform { tol: 1e-9 }.validate().is_ok());
        for bad in [0.0, -1e-9, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                GridSpec::Interpolated { tol: bad }.validate(),
                Err(Error::InvalidTolerance { .. })
            ));
            assert!(matches!(
                GridSpec::NonUniform { tol: bad }.validate(),
                Err(Error::InvalidTolerance { .. })
            ));
            // with_spec reports the same typed error without building.
            let table = GTable::new(&Sharing, 4).unwrap();
            assert!(matches!(
                table.with_spec(GridSpec::NonUniform { tol: bad }),
                Err(Error::InvalidTolerance { .. })
            ));
        }
        assert_eq!(GridSpec::Exact.key_bits(), (0, 0));
        assert_eq!(GridSpec::Interpolated { tol: 1e-9 }.key_bits(), (1, 1e-9f64.to_bits()));
        assert_eq!(GridSpec::NonUniform { tol: 1e-9 }.key_bits(), (2, 1e-9f64.to_bits()));
    }

    #[test]
    fn with_spec_exact_detaches_and_interpolated_matches_with_grid_bitwise() {
        let base = GTable::new(&Sharing, 16).unwrap();
        // Interpolated spec is the same build as the with_grid shorthand.
        let via_spec = base.clone().with_spec(GridSpec::Interpolated { tol: 1e-10 }).unwrap();
        let via_grid = base.clone().with_grid(1e-10).unwrap();
        assert_eq!(via_spec.grid_cells(), via_grid.grid_cells());
        let mut s1 = via_spec.scratch();
        let mut s2 = via_grid.scratch();
        for i in 0..=257 {
            let q = i as f64 / 257.0;
            assert_eq!(
                via_spec.eval_fast_with(&mut s1, q).to_bits(),
                via_grid.eval_fast_with(&mut s2, q).to_bits()
            );
        }
        // Exact spec detaches the grid and restores the reference path.
        let detached = via_spec.with_spec(GridSpec::Exact).unwrap();
        assert!(!detached.has_grid());
        let mut s3 = detached.scratch();
        assert_eq!(detached.eval_fast_with(&mut s3, 0.42).to_bits(), base.eval(0.42).to_bits());
    }

    #[test]
    fn nonuniform_grid_meets_error_bound_off_midpoint() {
        for c in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.4 }] {
            for k in [2usize, 64, 512] {
                let tol = 1e-9;
                let table =
                    GTable::new(c, k).unwrap().with_spec(GridSpec::NonUniform { tol }).unwrap();
                assert!(table.has_grid());
                assert!(table.grid_error().unwrap() <= tol * table.scale());
                let mut scratch = table.scratch();
                // Off-midpoint sample points (not used during refinement);
                // budget the same 4× the uniform grid tests use.
                for i in 0..400 {
                    let q = (i as f64 + 0.37) / 400.0;
                    let exact = table.eval_with(&mut scratch, q);
                    let interp = table.eval_fast_with(&mut scratch, q);
                    assert!(
                        (exact - interp).abs() <= 4.0 * tol * table.scale(),
                        "{} k={k} q={q}: exact {exact} interp {interp}",
                        c.name()
                    );
                }
            }
        }
    }

    #[test]
    fn nonuniform_grid_is_exact_at_endpoints() {
        let table = GTable::new(&Exclusive, 128)
            .unwrap()
            .with_spec(GridSpec::NonUniform { tol: 1e-9 })
            .unwrap();
        let mut s = table.scratch();
        assert_eq!(table.eval_fast_with(&mut s, 0.0).to_bits(), table.eval(0.0).to_bits());
        assert_eq!(table.eval_fast_with(&mut s, 1.0).to_bits(), table.eval(1.0).to_bits());
    }

    #[test]
    fn nonuniform_grid_is_far_smaller_than_uniform_at_large_k() {
        // The whole point of the non-uniform build: the exclusive policy's
        // boundary layer (width ~ 1/k) forces the uniform grid to spend
        // its doubling budget everywhere, while adaptive bisection spends
        // nodes only inside the layer.
        let k = 512;
        let tol = 1e-9;
        let uniform = GTable::new(&Exclusive, k).unwrap().with_grid(tol).unwrap();
        let nonuniform =
            GTable::new(&Exclusive, k).unwrap().with_spec(GridSpec::NonUniform { tol }).unwrap();
        assert!(
            nonuniform.grid_cells() * 8 < uniform.grid_cells(),
            "nonuniform {} cells vs uniform {}",
            nonuniform.grid_cells(),
            uniform.grid_cells()
        );
        assert!(nonuniform.grid_error().unwrap() <= tol * nonuniform.scale());
    }

    #[test]
    fn nonuniform_build_is_deterministic() {
        let a = GTable::new(&Sharing, 256)
            .unwrap()
            .with_spec(GridSpec::NonUniform { tol: 1e-10 })
            .unwrap();
        let b = GTable::new(&Sharing, 256)
            .unwrap()
            .with_spec(GridSpec::NonUniform { tol: 1e-10 })
            .unwrap();
        assert_eq!(a.grid_cells(), b.grid_cells());
        let (mut sa, mut sb) = (a.scratch(), b.scratch());
        for i in 0..=997 {
            let q = i as f64 / 997.0;
            assert_eq!(
                a.eval_fast_with(&mut sa, q).to_bits(),
                b.eval_fast_with(&mut sb, q).to_bits()
            );
        }
    }

    #[test]
    fn fast_eval_without_grid_falls_back_to_exact() {
        let table = GTable::new(&Sharing, 9).unwrap();
        let mut s = table.scratch();
        assert_eq!(
            table.eval_fast_with(&mut s, 0.42).to_bits(),
            table.eval_with(&mut s, 0.42).to_bits()
        );
    }

    #[test]
    fn table_congestion_roundtrip() {
        let policy = TableCongestion::new(vec![1.0, 0.5, 0.2, 0.2], "custom").unwrap();
        let ctx = PayoffContext::new(&policy, 4).unwrap();
        let table = GTable::new(&policy, 4).unwrap();
        for &q in grid_points(50).iter() {
            assert_eq!(ctx.g(q).unwrap().to_bits(), table.eval(q).to_bits());
        }
    }

    /// Five catalog-like policies (odd count, so the GEMM padding rows are
    /// exercised: 5 real rows pad to 8).
    fn batch_policies() -> Vec<&'static dyn Congestion> {
        vec![
            &Exclusive,
            &Sharing,
            &TwoLevel { c: -0.4 },
            &TwoLevel { c: 0.3 },
            &PowerLaw { beta: 2.5 },
        ]
    }

    #[test]
    fn gbatch_reference_mode_is_bit_identical_to_per_policy_tables() {
        for k in [1usize, 2, 5, 17, 64] {
            let policies = batch_policies();
            let batch = GBatch::new(&policies, k).unwrap();
            assert_eq!(batch.rows(), policies.len());
            assert_eq!(batch.k(), k);
            let tables: Vec<GTable> =
                policies.iter().map(|c| GTable::new(*c, k).unwrap()).collect();
            let mut scratch = batch.scratch();
            let mut out = vec![0.0; policies.len()];
            let mut out_prime = vec![0.0; policies.len()];
            for &q in grid_points(101).iter() {
                batch.eval_with(&mut scratch, q, &mut out).unwrap();
                batch.eval_prime_with(&mut scratch, q, &mut out_prime).unwrap();
                for (r, table) in tables.iter().enumerate() {
                    let mut ts = table.scratch();
                    assert_eq!(
                        out[r].to_bits(),
                        table.eval_with(&mut ts, q).to_bits(),
                        "row {r} k={k} q={q}"
                    );
                    assert_eq!(
                        out_prime[r].to_bits(),
                        table.eval_prime_with(&mut ts, q).to_bits(),
                        "prime row {r} k={k} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn gbatch_fused_matches_per_policy_eval_fused_to_contract() {
        for k in [1usize, 2, 17, 64, 256] {
            let policies = batch_policies();
            let batch = GBatch::new(&policies, k).unwrap();
            let tables: Vec<GTable> =
                policies.iter().map(|c| GTable::new(*c, k).unwrap()).collect();
            let mut scratch = batch.scratch();
            let mut out = vec![0.0; policies.len()];
            let tol = 1e-13 * batch.scale();
            for &q in grid_points(257).iter() {
                batch.eval_fused_into(&mut scratch, q, &mut out).unwrap();
                for (r, table) in tables.iter().enumerate() {
                    let reference = table.eval_fused(q);
                    assert!(
                        (out[r] - reference).abs() <= tol,
                        "row {r} k={k} q={q}: {} vs {reference}",
                        out[r]
                    );
                }
            }
        }
    }

    #[test]
    fn gbatch_grid_is_policy_major_and_matches_pointwise() {
        let policies = batch_policies();
        let batch = GBatch::new(&policies, 24).unwrap();
        let qs = grid_points(63);
        let mut scratch = batch.scratch();
        // Reference grid: every cell bit-identical to the single-point call.
        let mut ref_grid = vec![0.0; batch.rows() * qs.len()];
        batch.eval_many_with(&mut scratch, &qs, &mut ref_grid).unwrap();
        let mut point = vec![0.0; batch.rows()];
        for (i, &q) in qs.iter().enumerate() {
            batch.eval_with(&mut scratch, q, &mut point).unwrap();
            for r in 0..batch.rows() {
                assert_eq!(ref_grid[r * qs.len() + i].to_bits(), point[r].to_bits());
            }
        }
        // Fused grid (and the allocating convenience) match the fused point
        // path bitwise.
        let mut fused_grid = vec![0.0; batch.rows() * qs.len()];
        batch.eval_fused_many_into(&mut scratch, &qs, &mut fused_grid).unwrap();
        assert_eq!(batch.eval_grid(&qs), fused_grid);
        for (i, &q) in qs.iter().enumerate() {
            batch.eval_fused_into(&mut scratch, q, &mut point).unwrap();
            for r in 0..batch.rows() {
                assert_eq!(fused_grid[r * qs.len() + i].to_bits(), point[r].to_bits());
            }
        }
        // Fused derivative grid against the bit-exact reference derivative.
        let mut prime_grid = vec![0.0; batch.rows() * qs.len()];
        batch.eval_prime_fused_many_into(&mut scratch, &qs, &mut prime_grid).unwrap();
        let tables: Vec<GTable> = policies.iter().map(|c| GTable::new(*c, 24).unwrap()).collect();
        let tol = 1e-13 * 24.0 * batch.scale();
        for (r, table) in tables.iter().enumerate() {
            let mut ts = table.scratch();
            for (i, &q) in qs.iter().enumerate() {
                let reference = table.eval_prime_with(&mut ts, q);
                let got = prime_grid[r * qs.len() + i];
                assert!((got - reference).abs() <= tol, "row {r} q={q}: {got} vs {reference}");
            }
        }
    }

    #[test]
    fn gbatch_single_player_is_constant_with_zero_derivative() {
        let batch = GBatch::new(&batch_policies(), 1).unwrap();
        let mut scratch = batch.scratch();
        let mut out = vec![0.0; batch.rows()];
        for &q in &[0.0, 0.4, 1.0] {
            batch.eval_fused_into(&mut scratch, q, &mut out).unwrap();
            for (r, &v) in out.iter().enumerate() {
                assert_eq!(v, batch.row_coefficients(r)[0], "row {r}");
            }
            batch.eval_prime_with(&mut scratch, q, &mut out).unwrap();
            assert!(out.iter().all(|&v| v == 0.0));
            let mut prime_grid = vec![1.0; batch.rows()];
            batch.eval_prime_fused_many_into(&mut scratch, &[q], &mut prime_grid).unwrap();
            assert!(prime_grid.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn gbatch_validates_rows_and_lengths() {
        assert!(GBatch::from_rows(vec![]).is_err());
        assert!(GBatch::from_rows(vec![vec![]]).is_err());
        assert!(GBatch::from_rows(vec![vec![1.0, 0.5], vec![1.0, f64::NAN]]).is_err());
        // Mixed k is a typed length mismatch — mixed player counts go in
        // separate k-tiles.
        assert!(matches!(
            GBatch::from_rows(vec![vec![1.0, 0.5], vec![1.0, 0.5, 0.2]]),
            Err(Error::LengthMismatch { expected: 2, got: 3, .. })
        ));
        // Scaled (C(1) != 1) rows are allowed, and scale() sees them.
        let batch = GBatch::from_rows(vec![vec![1e9, 5e8], vec![1.0, 0.5]]).unwrap();
        assert_eq!(batch.scale(), 1e9);
        assert_eq!(batch.row_coefficients(1), &[1.0, 0.5]);
        // Output-length mismatches are typed errors on every entry point.
        let mut scratch = batch.scratch();
        let mut short = vec![0.0; 1];
        assert!(matches!(
            batch.eval_with(&mut scratch, 0.5, &mut short),
            Err(Error::LengthMismatch { expected: 2, got: 1, .. })
        ));
        assert!(matches!(
            batch.eval_fused_into(&mut scratch, 0.5, &mut short),
            Err(Error::LengthMismatch { .. })
        ));
        assert!(matches!(
            batch.eval_prime_with(&mut scratch, 0.5, &mut short),
            Err(Error::LengthMismatch { .. })
        ));
        let qs = [0.25, 0.75];
        assert!(matches!(
            batch.eval_many_with(&mut scratch, &qs, &mut short),
            Err(Error::LengthMismatch { expected: 4, got: 1, .. })
        ));
        assert!(matches!(
            batch.eval_fused_many_into(&mut scratch, &qs, &mut short),
            Err(Error::LengthMismatch { .. })
        ));
        assert!(matches!(
            batch.eval_prime_fused_many_into(&mut scratch, &qs, &mut short),
            Err(Error::LengthMismatch { .. })
        ));
    }

    #[test]
    fn pb_table_matches_one_shot_dp_bitwise() {
        let probs = [0.1, 0.9, 0.33, 0.5, 0.02, 0.0, 1.0, 0.77];
        let table = PbTable::from_probs(&probs).unwrap();
        let reference = crate::numerics::poisson_binomial_pmf(&probs);
        assert_eq!(table.len(), probs.len());
        assert_eq!(table.pmf().len(), reference.len());
        for (j, (&a, &b)) in table.pmf().iter().zip(reference.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "pmf[{j}]: {a} vs {b}");
        }
    }

    #[test]
    fn pb_table_push_remove_roundtrip() {
        let base = [0.2, 0.5, 0.8];
        for &p in &[0.0, 1e-9, 0.3, 0.5, 0.7, 1.0 - 1e-9, 1.0] {
            let mut table = PbTable::from_probs(&base).unwrap();
            let before = table.pmf().to_vec();
            table.push(p).unwrap();
            assert_eq!(table.len(), 4);
            table.remove(p).unwrap();
            assert_eq!(table.len(), 3);
            for (j, (&a, &b)) in table.pmf().iter().zip(before.iter()).enumerate() {
                assert!((a - b).abs() <= 1e-14, "p = {p} pmf[{j}] drifted: {a} vs {b}");
            }
        }
    }

    #[test]
    fn pb_table_remove_requires_membership() {
        let mut table = PbTable::from_probs(&[0.25, 0.75]).unwrap();
        assert!(table.remove(0.5).is_err());
        assert_eq!(table.len(), 2, "failed remove must not mutate");
        assert!(table.remove(0.25).is_ok());
        assert!(PbTable::new().remove(0.1).is_err());
    }

    #[test]
    fn pb_table_rejects_bad_probabilities() {
        let mut table = PbTable::new();
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            assert!(table.push(bad).is_err(), "push({bad}) should fail");
        }
        // Round-off clamps; -0.0 canonicalizes so remove-by-value works.
        table.push(-1e-13).unwrap();
        table.push(-0.0).unwrap();
        assert_eq!(table.probs(), &[0.0, 0.0]);
        table.remove(0.0).unwrap();
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn pb_table_replace_walks_ledger_levels() {
        // Start from an all-sigma profile and replace one sigma per step —
        // the ESS-ledger walk. Compare each level against a fresh DP.
        let (s, p) = (0.37, 0.61);
        let n = 24;
        let mut table = PbTable::from_probs(&vec![s; n]).unwrap();
        for level in 1..=n {
            table.replace(s, p).unwrap();
            let mut profile = vec![s; n - level];
            profile.extend(std::iter::repeat_n(p, level));
            let reference = crate::numerics::poisson_binomial_pmf(&profile);
            for (j, (&a, &b)) in table.pmf().iter().zip(reference.iter()).enumerate() {
                assert!((a - b).abs() <= 1e-13, "level {level} pmf[{j}]: {a} vs {b}");
            }
        }
        // Bit-equal replace is an exact no-op.
        let before = table.pmf().to_vec();
        table.replace(p, p).unwrap();
        for (&a, &b) in table.pmf().iter().zip(before.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(table.replace(0.123, 0.123).is_err(), "no-op replace still checks membership");
    }

    #[test]
    fn pb_table_expectation_and_mean() {
        let probs = [0.2, 0.7, 0.4];
        let table = PbTable::from_probs(&probs).unwrap();
        let h: Vec<f64> = (0..=3).map(|j| j as f64).collect();
        assert!((table.expectation(&h) - 1.3).abs() < 1e-12);
        assert!((table.mean() - 1.3).abs() < 1e-12);
        // Clearing returns to the empty product.
        let mut table = table;
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.pmf(), &[1.0]);
    }

    #[test]
    fn pb_cache_shares_profile_classes() {
        let cache = PbCache::new();
        let a = cache.table(&[0.2, 0.8]).unwrap().pmf().to_vec();
        // Permutations share one table (sorted-multiset key).
        let b = cache.table(&[0.8, 0.2]).unwrap().pmf().to_vec();
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
        for (&x, &y) in a.iter().zip(b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // A different multiset builds a second table.
        cache.table(&[0.2, 0.2]).unwrap();
        assert_eq!(cache.builds(), 2);
        assert!(!cache.is_empty());
        assert!(cache.table(&[f64::NAN]).is_err());
    }

    #[test]
    fn kernel_speeds_site_value_identity() {
        // ν(x) = f(x)·g(p(x)) through the batched path equals the scalar
        // definition.
        let f = ValueProfile::zipf(30, 1.0, 1.0).unwrap();
        let ctx = PayoffContext::new(&Sharing, 8).unwrap();
        let p = crate::strategy::Strategy::proportional(f.values()).unwrap();
        let nu = ctx.site_values(&f, &p).unwrap();
        for (x, &v) in nu.iter().enumerate() {
            let expect = f.value(x) * ctx.g(p.prob(x)).unwrap();
            assert_eq!(v.to_bits(), expect.to_bits(), "site {x}");
        }
    }

    #[test]
    fn pb_cache_tables_independent_of_warm_order() {
        // The same set of profile classes warmed in two different orders
        // must yield bit-identical tables per class: lookups are keyed
        // (never iterated), and each class's DP runs over its *sorted*
        // representative regardless of when it entered the cache.
        let profiles: [&[f64]; 4] = [&[0.2, 0.8], &[0.5, 0.5, 0.5], &[0.9], &[0.1, 0.2, 0.3, 0.4]];
        let forward = PbCache::new();
        let reverse = PbCache::new();
        let fwd: Vec<Vec<f64>> =
            profiles.iter().map(|p| forward.table(p).unwrap().pmf().to_vec()).collect();
        for p in profiles.iter().rev() {
            reverse.table(p).unwrap();
        }
        assert_eq!(forward.builds(), reverse.builds());
        for (p, expect) in profiles.iter().zip(&fwd) {
            let got = reverse.table(p).unwrap();
            for (a, b) in expect.iter().zip(got.pmf()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn miri_gtable_eval_small() {
        // Tiny end-to-end table evaluation for the Miri CI subset: builds
        // the k = 3 sharing table and checks one interior point against
        // the scalar Bernstein form.
        let table = GTable::new(&Sharing, 3).unwrap();
        let mut scratch = table.scratch();
        let q = 0.25;
        let expect: f64 = crate::numerics::kahan_sum(
            (0..=2).map(|j| crate::numerics::bernstein(2, j, q) * 1.0 / (j as f64 + 1.0)),
        );
        assert!((table.eval_with(&mut scratch, q) - expect).abs() < 1e-12);
    }
}
