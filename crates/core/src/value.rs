//! Site value profiles: the function `f : [1, M] → R₊` of the paper.
//!
//! A [`ValueProfile`] owns a vector of positive site values sorted in
//! non-increasing order (`f(x) ≥ f(x+1)`), matching the paper's convention
//! that lower-index sites are at least as valuable. All solvers in this
//! crate assume that ordering, so the constructor enforces it (either by
//! validation or by sorting, depending on which builder you use).

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// A profile of site values, sorted non-increasing, all entries finite and
/// strictly positive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueProfile {
    values: Vec<f64>,
}

impl ValueProfile {
    /// Build a profile from values that are already sorted non-increasing.
    ///
    /// # Errors
    /// Fails if the vector is empty, contains a non-finite or non-positive
    /// entry, or is not sorted non-increasing.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::EmptyProfile);
        }
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() || v <= 0.0 {
                return Err(Error::InvalidValue { index: i, value: v });
            }
        }
        for i in 0..values.len() - 1 {
            if values[i] < values[i + 1] {
                return Err(Error::InvalidArgument(format!(
                    "values must be sorted non-increasing: f({}) = {} < f({}) = {}",
                    i + 1,
                    values[i],
                    i + 2,
                    values[i + 1]
                )));
            }
        }
        Ok(Self { values })
    }

    /// Build a profile from arbitrary positive values, sorting them into the
    /// canonical non-increasing order.
    pub fn from_unsorted(mut values: Vec<f64>) -> Result<Self> {
        values.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        Self::new(values)
    }

    /// `M` identical sites of value `v`.
    pub fn uniform(m: usize, v: f64) -> Result<Self> {
        Self::new(vec![v; m])
    }

    /// Geometric decay: `f(x) = scale · ρ^(x−1)` for `x = 1..=m`, `0 < ρ ≤ 1`.
    pub fn geometric(m: usize, scale: f64, rho: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&rho) || rho == 0.0 {
            return Err(Error::InvalidArgument(format!(
                "geometric ratio must be in (0, 1], got {rho}"
            )));
        }
        let mut values = Vec::with_capacity(m);
        let mut v = scale;
        for _ in 0..m {
            values.push(v);
            v *= rho;
        }
        Self::new(values)
    }

    /// Zipf / power-law decay: `f(x) = scale / x^s`.
    pub fn zipf(m: usize, scale: f64, s: f64) -> Result<Self> {
        if s < 0.0 {
            return Err(Error::InvalidArgument(format!("zipf exponent must be >= 0, got {s}")));
        }
        Self::new((1..=m).map(|x| scale / (x as f64).powf(s)).collect())
    }

    /// Linear decay: `f(x) = hi − (hi − lo)·(x−1)/(m−1)`, requiring
    /// `hi ≥ lo > 0`. For `m = 1` the single site has value `hi`.
    pub fn linear(m: usize, hi: f64, lo: f64) -> Result<Self> {
        if hi < lo {
            return Err(Error::InvalidArgument(format!(
                "linear profile needs hi >= lo, got {hi} < {lo}"
            )));
        }
        if m == 1 {
            return Self::new(vec![hi]);
        }
        let step = (hi - lo) / ((m - 1) as f64);
        Self::new((0..m).map(|i| hi - step * i as f64).collect())
    }

    /// The slowly-decreasing witness family used in the proof of Theorem 6:
    /// a strictly decreasing profile whose total relative decay satisfies
    /// `f(M)/f(1) > (1 − 1/(2k))^{k−1}`, which forces the IFD support to
    /// exceed `2k` sites.
    pub fn slow_decay_witness(m: usize, k: usize) -> Result<Self> {
        if k < 2 {
            return Err(Error::InvalidPlayerCount { k });
        }
        // Target total decay strictly inside the allowed band.
        let bound = (1.0 - 1.0 / (2.0 * k as f64)).powi(k as i32 - 1);
        // Strictly between bound and 1.
        let target_ratio = 0.5 * (1.0 + bound);
        // Geometric interpolation keeps the profile strictly decreasing.
        let per_step = target_ratio.powf(1.0 / ((m.max(2) - 1) as f64));
        Self::geometric(m, 1.0, per_step)
    }

    /// Number of sites `M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the profile has no sites (never constructible; provided for
    /// API completeness and clippy's `len_without_is_empty`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value `f(x)` using 0-based indexing (`site ∈ [0, M)`).
    #[inline]
    pub fn value(&self, site: usize) -> f64 {
        self.values[site]
    }

    /// Borrow the raw sorted value slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sum of all site values (the full-coordination coverage ceiling when
    /// `k ≥ M`).
    pub fn total(&self) -> f64 {
        crate::numerics::kahan_sum(self.values.iter().copied())
    }

    /// Sum of the top `n` values — `Σ_{x ≤ n} f(x)` in the paper's notation
    /// (e.g. the benchmark of Observation 1 uses `n = k`).
    pub fn top_sum(&self, n: usize) -> f64 {
        crate::numerics::kahan_sum(self.values.iter().take(n).copied())
    }

    /// Ratio `f(M)/f(1)` measuring how slowly the profile decays.
    pub fn decay_ratio(&self) -> f64 {
        self.values[self.values.len() - 1] / self.values[0]
    }

    /// True when the profile is strictly decreasing.
    pub fn is_strictly_decreasing(&self) -> bool {
        self.values.windows(2).all(|w| w[0] > w[1])
    }

    /// Rescale all values by a positive constant, preserving order.
    pub fn scaled(&self, c: f64) -> Result<Self> {
        if !c.is_finite() || c <= 0.0 {
            return Err(Error::InvalidArgument(format!("scale factor must be positive, got {c}")));
        }
        Self::new(self.values.iter().map(|v| v * c).collect())
    }

    /// Restrict to the top `n` sites.
    pub fn truncated(&self, n: usize) -> Result<Self> {
        Self::new(self.values.iter().take(n).copied().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_sorted_positive() {
        let f = ValueProfile::new(vec![3.0, 2.0, 2.0, 0.5]).unwrap();
        assert_eq!(f.len(), 4);
        assert_eq!(f.value(0), 3.0);
        assert_eq!(f.value(3), 0.5);
        assert!(!f.is_empty());
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(ValueProfile::new(vec![]).unwrap_err(), Error::EmptyProfile);
    }

    #[test]
    fn new_rejects_nonpositive_and_nonfinite() {
        assert!(matches!(
            ValueProfile::new(vec![1.0, 0.0]),
            Err(Error::InvalidValue { index: 1, .. })
        ));
        assert!(matches!(
            ValueProfile::new(vec![1.0, -2.0]),
            Err(Error::InvalidValue { index: 1, .. })
        ));
        assert!(matches!(
            ValueProfile::new(vec![f64::NAN]),
            Err(Error::InvalidValue { index: 0, .. })
        ));
        assert!(matches!(
            ValueProfile::new(vec![f64::INFINITY]),
            Err(Error::InvalidValue { index: 0, .. })
        ));
    }

    #[test]
    fn new_rejects_unsorted() {
        assert!(ValueProfile::new(vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn from_unsorted_sorts() {
        let f = ValueProfile::from_unsorted(vec![1.0, 3.0, 2.0]).unwrap();
        assert_eq!(f.values(), &[3.0, 2.0, 1.0]);
    }

    #[test]
    fn uniform_builder() {
        let f = ValueProfile::uniform(4, 2.5).unwrap();
        assert_eq!(f.values(), &[2.5; 4]);
        assert!(ValueProfile::uniform(0, 1.0).is_err());
    }

    #[test]
    fn geometric_builder() {
        let f = ValueProfile::geometric(3, 8.0, 0.5).unwrap();
        assert_eq!(f.values(), &[8.0, 4.0, 2.0]);
        assert!(ValueProfile::geometric(3, 1.0, 0.0).is_err());
        assert!(ValueProfile::geometric(3, 1.0, 1.5).is_err());
    }

    #[test]
    fn zipf_builder() {
        let f = ValueProfile::zipf(3, 1.0, 1.0).unwrap();
        assert!((f.value(1) - 0.5).abs() < 1e-15);
        assert!((f.value(2) - 1.0 / 3.0).abs() < 1e-15);
        assert!(ValueProfile::zipf(3, 1.0, -1.0).is_err());
    }

    #[test]
    fn linear_builder() {
        let f = ValueProfile::linear(3, 1.0, 0.5).unwrap();
        assert_eq!(f.values(), &[1.0, 0.75, 0.5]);
        assert_eq!(ValueProfile::linear(1, 2.0, 1.0).unwrap().values(), &[2.0]);
        assert!(ValueProfile::linear(3, 0.5, 1.0).is_err());
    }

    #[test]
    fn slow_decay_witness_satisfies_theorem6_band() {
        for &k in &[2usize, 3, 5, 10] {
            let m = 4 * k;
            let f = ValueProfile::slow_decay_witness(m, k).unwrap();
            let bound = (1.0 - 1.0 / (2.0 * k as f64)).powi(k as i32 - 1);
            assert!(f.is_strictly_decreasing());
            assert!(f.decay_ratio() > bound, "k={k}: {} <= {bound}", f.decay_ratio());
        }
        assert!(ValueProfile::slow_decay_witness(10, 1).is_err());
    }

    #[test]
    fn totals_and_top_sums() {
        let f = ValueProfile::new(vec![3.0, 2.0, 1.0]).unwrap();
        assert!((f.total() - 6.0).abs() < 1e-15);
        assert!((f.top_sum(2) - 5.0).abs() < 1e-15);
        assert!((f.top_sum(10) - 6.0).abs() < 1e-15);
        assert!((f.top_sum(0)).abs() < 1e-15);
    }

    #[test]
    fn scaled_and_truncated() {
        let f = ValueProfile::new(vec![3.0, 2.0, 1.0]).unwrap();
        assert_eq!(f.scaled(2.0).unwrap().values(), &[6.0, 4.0, 2.0]);
        assert!(f.scaled(0.0).is_err());
        assert!(f.scaled(f64::NAN).is_err());
        assert_eq!(f.truncated(2).unwrap().values(), &[3.0, 2.0]);
        assert!(f.truncated(0).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let f = ValueProfile::new(vec![2.0, 1.0]).unwrap();
        let json = serde_json::to_string(&f).unwrap();
        let back: ValueProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
