//! Closed-form solutions for the Figure 1 geometry: `k = 2` players over
//! `M = 2` sites with the two-level congestion family `C_c(1) = 1`,
//! `C_c(2) = c`.
//!
//! For `k = 2` the congestion response is affine, `g(q) = 1 − q·(1 − c)`,
//! so everything is solvable by hand:
//!
//! * **IFD**: equalize `f₁·g(p) = f₂·g(1 − p)` ⇒
//!   `p = (f₁ − c·f₂) / ((1 − c)(f₁ + f₂))`, clamped to `[0, 1]`;
//! * **welfare optimum**: `U(p)` is an exact quadratic in `p`, maximized at
//!   `p = (f₁ − f₂ + 2·f₂·(1 − c)) / (2(1 − c)(f₁ + f₂))`, clamped;
//! * **coverage optimum**: `Cover(p)` is an exact quadratic too, maximized
//!   at `p = f₁ / (f₁ + f₂)` (which is σ⋆ for `k = 2, M = 2`).
//!
//! These formulas exist purely as an *independent cross-check*: the general
//! solvers never see them, and the test suite pins solver output against
//! them to machine precision.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Closed-form solution of one Figure 1 column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoByTwo {
    /// Collision payoff fraction `c` (must be `< 1` for non-degeneracy).
    pub c: f64,
    /// Top-site value `f₁`.
    pub f1: f64,
    /// Second-site value `f₂ ≤ f₁`.
    pub f2: f64,
    /// IFD probability on the top site.
    pub ifd_p1: f64,
    /// Coverage of the IFD.
    pub ifd_coverage: f64,
    /// Welfare-optimal probability on the top site.
    pub welfare_p1: f64,
    /// Coverage of the welfare optimum.
    pub welfare_coverage: f64,
    /// Coverage-optimal probability on the top site (= σ⋆).
    pub optimal_p1: f64,
    /// The optimal coverage.
    pub optimal_coverage: f64,
}

fn coverage_two(f1: f64, f2: f64, p: f64) -> f64 {
    f1 * (1.0 - (1.0 - p) * (1.0 - p)) + f2 * (1.0 - p * p)
}

/// Solve the 2-player, 2-site game in closed form.
///
/// # Errors
/// Requires `f1 ≥ f2 > 0` and `c < 1` (at `c = 1` congestion is free and
/// the equilibrium degenerates).
pub fn solve_two_by_two(f1: f64, f2: f64, c: f64) -> Result<TwoByTwo> {
    if !(f1.is_finite() && f2.is_finite() && f1 >= f2 && f2 > 0.0) {
        return Err(Error::InvalidArgument(format!("need f1 >= f2 > 0, got f1 = {f1}, f2 = {f2}")));
    }
    if !(c.is_finite() && c < 1.0) {
        return Err(Error::InvalidArgument(format!(
            "need c < 1 for a non-degenerate game, got {c}"
        )));
    }
    let a = 1.0 - c;
    // IFD: f1 (1 - a p) = f2 (1 - a (1 - p)).
    let ifd_p1 = ((f1 - c * f2) / (a * (f1 + f2))).clamp(0.0, 1.0);
    // Welfare: U(p) = p f1 (1 - a p) + (1-p) f2 (1 - a (1-p)); quadratic
    // with vertex below. The leading coefficient is -a (f1 + f2) < 0, so
    // the clamped vertex is the global maximum on [0, 1].
    let welfare_p1 = ((f1 - f2 + 2.0 * f2 * a) / (2.0 * a * (f1 + f2))).clamp(0.0, 1.0);
    // Coverage: quadratic with maximum at f1/(f1+f2).
    let optimal_p1 = f1 / (f1 + f2);
    Ok(TwoByTwo {
        c,
        f1,
        f2,
        ifd_p1,
        ifd_coverage: coverage_two(f1, f2, ifd_p1),
        welfare_p1,
        welfare_coverage: coverage_two(f1, f2, welfare_p1),
        optimal_p1,
        optimal_coverage: coverage_two(f1, f2, optimal_p1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::coverage;
    use crate::ifd::solve_ifd;
    use crate::optimal::optimal_coverage;
    use crate::policy::TwoLevel;
    use crate::sigma_star::sigma_star;
    use crate::value::ValueProfile;
    use crate::welfare::welfare_optimum;

    fn close(x: f64, y: f64, tol: f64) {
        assert!((x - y).abs() < tol, "{x} != {y} (tol {tol})");
    }

    #[test]
    fn validates_inputs() {
        assert!(solve_two_by_two(0.5, 1.0, 0.0).is_err());
        assert!(solve_two_by_two(1.0, 0.0, 0.0).is_err());
        assert!(solve_two_by_two(1.0, 0.5, 1.0).is_err());
        assert!(solve_two_by_two(1.0, 0.5, f64::NAN).is_err());
    }

    #[test]
    fn exclusive_case_matches_sigma_star() {
        // c = 0: the IFD is sigma*, which is also the coverage optimum.
        for f2 in [0.3, 0.5, 0.9] {
            let sol = solve_two_by_two(1.0, f2, 0.0).unwrap();
            let f = ValueProfile::new(vec![1.0, f2]).unwrap();
            let star = sigma_star(&f, 2).unwrap();
            close(sol.ifd_p1, star.strategy.prob(0), 1e-12);
            close(sol.ifd_p1, sol.optimal_p1, 1e-12);
            close(sol.ifd_coverage, sol.optimal_coverage, 1e-12);
        }
    }

    #[test]
    fn closed_form_ifd_matches_general_solver_across_c() {
        for f2 in [0.3, 0.5] {
            let f = ValueProfile::new(vec![1.0, f2]).unwrap();
            for i in 0..=20 {
                let c = -0.5 + i as f64 * 0.05;
                if (c - 1.0).abs() < 1e-9 {
                    continue;
                }
                let sol = solve_two_by_two(1.0, f2, c).unwrap();
                let ifd = solve_ifd(&TwoLevel::new(c).unwrap(), &f, 2).unwrap();
                close(sol.ifd_p1, ifd.strategy.prob(0), 1e-8);
                let cov = coverage(&f, &ifd.strategy, 2).unwrap();
                close(sol.ifd_coverage, cov, 1e-8);
            }
        }
    }

    #[test]
    fn closed_form_welfare_matches_golden_section() {
        for f2 in [0.3, 0.5] {
            let f = ValueProfile::new(vec![1.0, f2]).unwrap();
            for &c in &[-0.5, -0.2, 0.0, 0.3, 0.5] {
                let sol = solve_two_by_two(1.0, f2, c).unwrap();
                let wel = welfare_optimum(&TwoLevel::new(c).unwrap(), &f, 2).unwrap();
                close(sol.welfare_p1, wel.strategy.prob(0), 1e-6);
            }
        }
    }

    #[test]
    fn closed_form_optimum_matches_waterfill() {
        for f2 in [0.25, 0.6, 1.0] {
            let f = ValueProfile::new(vec![1.0, f2]).unwrap();
            let sol = solve_two_by_two(1.0, f2, 0.2).unwrap();
            let opt = optimal_coverage(&f, 2).unwrap();
            close(sol.optimal_p1, opt.strategy.prob(0), 1e-9);
            close(sol.optimal_coverage, opt.coverage, 1e-12);
        }
    }

    #[test]
    fn figure1_peak_at_zero_analytically() {
        // d/dc of the IFD coverage at c = 0 must vanish (the peak), and the
        // coverage at c = 0 equals the optimum.
        for f2 in [0.3, 0.5] {
            let h = 1e-5;
            let at = |c: f64| solve_two_by_two(1.0, f2, c).unwrap().ifd_coverage;
            let derivative = (at(h) - at(-h)) / (2.0 * h);
            assert!(derivative.abs() < 1e-4, "dCover/dc at 0 = {derivative}");
            let sol = solve_two_by_two(1.0, f2, 0.0).unwrap();
            close(sol.ifd_coverage, sol.optimal_coverage, 1e-12);
        }
    }

    #[test]
    fn sharing_parks_everyone_on_top_site_when_values_close() {
        // c = 0.5 (sharing for k = 2), f = (1, 0.5): the clamp binds and
        // the IFD is the point mass on site 1 (coverage = f1).
        let sol = solve_two_by_two(1.0, 0.5, 0.5).unwrap();
        close(sol.ifd_p1, 1.0, 1e-12);
        close(sol.ifd_coverage, 1.0, 1e-12);
    }

    #[test]
    fn aggression_beyond_exclusive_overshoots() {
        // c < 0: the equilibrium spreads *more* than the coverage optimum
        // (p1 below optimal), which is exactly why coverage drops again —
        // the "more competition isn't better" surprise of the paper.
        let sol = solve_two_by_two(1.0, 0.3, -0.4).unwrap();
        assert!(
            sol.ifd_p1 < sol.optimal_p1,
            "aggressive equilibrium should overspread: {} vs {}",
            sol.ifd_p1,
            sol.optimal_p1
        );
        assert!(sol.ifd_coverage < sol.optimal_coverage);
    }
}
