//! The coverage functional (Eq. 1) and its complements and gradients.
//!
//! For a symmetric strategy `p` played by `k` players,
//! `Cover(p) = Σ_x f(x)·(1 − (1 − p(x))^k)` is the expected total value of
//! sites visited by at least one player. Maximizing `Cover` is equivalent to
//! minimizing the *miss mass* `T(p) = Σ_x f(x)·(1 − p(x))^k`, which is the
//! convex form used by the optimality proof of Theorem 4.

use crate::error::{Error, Result};
use crate::numerics::kahan_sum;
use crate::strategy::Strategy;
use crate::value::ValueProfile;

fn check_dims(f: &ValueProfile, p: &Strategy) -> Result<()> {
    if f.len() != p.len() {
        return Err(Error::DimensionMismatch { strategy: p.len(), profile: f.len() });
    }
    Ok(())
}

/// Validate a raw probability slice against a profile: matching length and
/// every entry in `[0, 1]` up to round-off tolerance. Used by the
/// slice-based variants so drifted dynamics states fail loudly instead of
/// silently evaluating out-of-range masses.
fn check_probs(f: &ValueProfile, probs: &[f64]) -> Result<()> {
    if f.len() != probs.len() {
        return Err(Error::DimensionMismatch { strategy: probs.len(), profile: f.len() });
    }
    for &px in probs {
        if !px.is_finite() || !(-1e-12..=1.0 + 1e-12).contains(&px) {
            return Err(Error::ProbabilityOutOfRange { q: px });
        }
    }
    Ok(())
}

/// Expected coverage `Cover(p)` of the symmetric profile where all `k`
/// players play `p` (Eq. 1).
pub fn coverage(f: &ValueProfile, p: &Strategy, k: usize) -> Result<f64> {
    check_dims(f, p)?;
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    Ok(kahan_sum(
        f.values()
            .iter()
            .zip(p.probs().iter())
            .map(|(&fx, &px)| fx * (1.0 - (1.0 - px).powi(k as i32))),
    ))
}

/// Slice-based [`coverage`]: evaluates `Cover` directly on a raw
/// probability vector (e.g. a replicator/ODE state or one row of a batch)
/// without constructing a [`Strategy`]. Entries are validated to be
/// probabilities up to round-off tolerance and clamped.
pub fn coverage_probs(f: &ValueProfile, probs: &[f64], k: usize) -> Result<f64> {
    check_probs(f, probs)?;
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    Ok(kahan_sum(
        f.values()
            .iter()
            .zip(probs.iter())
            .map(|(&fx, &px)| fx * (1.0 - (1.0 - px.clamp(0.0, 1.0)).powi(k as i32))),
    ))
}

/// Batched [`coverage`] over many strategies sharing one profile and `k` —
/// the grid-sweep shape. Validation is all-or-nothing before any row is
/// evaluated.
pub fn coverage_many(f: &ValueProfile, ps: &[Strategy], k: usize) -> Result<Vec<f64>> {
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    for p in ps {
        check_dims(f, p)?;
    }
    ps.iter().map(|p| coverage(f, p, k)).collect()
}

/// Miss mass `T(p) = Σ_x f(x)(1 − p(x))^k = Σf − Cover(p)`.
pub fn miss_mass(f: &ValueProfile, p: &Strategy, k: usize) -> Result<f64> {
    check_dims(f, p)?;
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    Ok(kahan_sum(
        f.values().iter().zip(p.probs().iter()).map(|(&fx, &px)| fx * (1.0 - px).powi(k as i32)),
    ))
}

/// Gradient of `Cover` with respect to `p`:
/// `∂Cover/∂p(x) = k·f(x)·(1 − p(x))^{k−1}`.
pub fn coverage_gradient(f: &ValueProfile, p: &Strategy, k: usize) -> Result<Vec<f64>> {
    check_dims(f, p)?;
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    Ok(f.values()
        .iter()
        .zip(p.probs().iter())
        .map(|(&fx, &px)| k as f64 * fx * (1.0 - px).powi(k as i32 - 1))
        .collect())
}

/// Expected coverage of an arbitrary (possibly asymmetric) strategy profile:
/// `Σ_x f(x)·(1 − Π_i (1 − p_i(x)))`.
pub fn coverage_profile(f: &ValueProfile, profile: &[Strategy]) -> Result<f64> {
    if profile.is_empty() {
        return Err(Error::InvalidPlayerCount { k: 0 });
    }
    for p in profile {
        check_dims(f, p)?;
    }
    Ok(kahan_sum((0..f.len()).map(|x| {
        let miss: f64 = profile.iter().map(|p| 1.0 - p.prob(x)).product();
        f.value(x) * (1.0 - miss)
    })))
}

/// The full-coordination ceiling: coverage when the `k` players are assigned
/// deterministically to the `k` best sites, `Σ_{x ≤ k} f(x)`.
pub fn coordinated_ceiling(f: &ValueProfile, k: usize) -> f64 {
    f.top_sum(k)
}

/// The Observation 1 lower bound `(1 − 1/e)·Σ_{x ≤ k} f(x)` that the optimal
/// symmetric coverage always exceeds.
pub fn observation1_bound(f: &ValueProfile, k: usize) -> f64 {
    (1.0 - (-1.0f64).exp()) * f.top_sum(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn coverage_single_player_is_expected_value() {
        let f = ValueProfile::new(vec![2.0, 1.0]).unwrap();
        let p = Strategy::new(vec![0.25, 0.75]).unwrap();
        close(coverage(&f, &p, 1).unwrap(), 0.25 * 2.0 + 0.75 * 1.0);
    }

    #[test]
    fn coverage_point_mass() {
        let f = ValueProfile::new(vec![2.0, 1.0]).unwrap();
        let p = Strategy::delta(2, 0).unwrap();
        for k in 1..5usize {
            close(coverage(&f, &p, k).unwrap(), 2.0);
        }
    }

    #[test]
    fn coverage_two_players_two_sites_closed_form() {
        // Cover = f1(1-(1-p)^2) + f2(1-p^2) for p on site 1.
        let f = ValueProfile::new(vec![1.0, 0.3]).unwrap();
        let p = Strategy::new(vec![0.6, 0.4]).unwrap();
        let expect = 1.0 * (1.0 - 0.4f64.powi(2)) + 0.3 * (1.0 - 0.6f64.powi(2));
        close(coverage(&f, &p, 2).unwrap(), expect);
    }

    #[test]
    fn coverage_plus_miss_is_total() {
        let f = ValueProfile::zipf(20, 1.0, 0.8).unwrap();
        let p = Strategy::uniform(20).unwrap();
        for k in [1usize, 2, 5, 17] {
            let c = coverage(&f, &p, k).unwrap();
            let t = miss_mass(&f, &p, k).unwrap();
            close(c + t, f.total());
        }
    }

    #[test]
    fn coverage_monotone_in_k() {
        let f = ValueProfile::geometric(10, 1.0, 0.7).unwrap();
        let p = Strategy::uniform(10).unwrap();
        let mut prev = 0.0;
        for k in 1..20usize {
            let c = coverage(&f, &p, k).unwrap();
            assert!(c > prev);
            prev = c;
        }
        // And bounded by the total value.
        assert!(prev < f.total());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let f = ValueProfile::new(vec![2.0, 1.5, 0.5]).unwrap();
        let p = Strategy::new(vec![0.5, 0.3, 0.2]).unwrap();
        let k = 4;
        let g = coverage_gradient(&f, &p, k).unwrap();
        let h = 1e-7;
        for x in 0..3 {
            // One-sided perturbation off the simplex (Cover extends smoothly).
            let mut probs = p.probs().to_vec();
            probs[x] += h;
            let perturbed: f64 = f
                .values()
                .iter()
                .zip(probs.iter())
                .map(|(&fx, &px)| fx * (1.0 - (1.0 - px).powi(k as i32)))
                .sum();
            let base = coverage(&f, &p, k).unwrap();
            let fd = (perturbed - base) / h;
            assert!((g[x] - fd).abs() < 1e-5, "site {x}: {} vs {fd}", g[x]);
        }
    }

    #[test]
    fn asymmetric_profile_matches_symmetric_special_case() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let p = Strategy::new(vec![0.7, 0.3]).unwrap();
        let sym = coverage(&f, &p, 3).unwrap();
        let asym = coverage_profile(&f, &[p.clone(), p.clone(), p]).unwrap();
        close(sym, asym);
    }

    #[test]
    fn asymmetric_profile_perfect_assignment() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let p0 = Strategy::delta(2, 0).unwrap();
        let p1 = Strategy::delta(2, 1).unwrap();
        close(coverage_profile(&f, &[p0, p1]).unwrap(), 1.5);
    }

    #[test]
    fn coverage_probs_matches_strategy_path_bitwise() {
        let f = ValueProfile::zipf(15, 1.0, 0.9).unwrap();
        let p = Strategy::proportional(f.values()).unwrap();
        for k in [1usize, 3, 8] {
            let a = coverage(&f, &p, k).unwrap();
            let b = coverage_probs(&f, p.probs(), k).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "k = {k}");
        }
    }

    #[test]
    fn coverage_probs_validates_range() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        // Round-off drift is clamped …
        assert!(coverage_probs(&f, &[1.0 + 1e-13, -1e-13], 2).is_ok());
        // … genuine violations and bad dimensions error.
        assert!(coverage_probs(&f, &[0.5, 1.5], 2).is_err());
        assert!(coverage_probs(&f, &[0.5, f64::NAN], 2).is_err());
        assert!(coverage_probs(&f, &[1.0], 2).is_err());
        assert!(coverage_probs(&f, &[0.5, 0.5], 0).is_err());
    }

    #[test]
    fn coverage_many_matches_individual_calls() {
        let f = ValueProfile::geometric(8, 1.0, 0.7).unwrap();
        let ps = vec![
            Strategy::uniform(8).unwrap(),
            Strategy::proportional(f.values()).unwrap(),
            Strategy::delta(8, 2).unwrap(),
        ];
        let batch = coverage_many(&f, &ps, 4).unwrap();
        assert_eq!(batch.len(), 3);
        for (p, &b) in ps.iter().zip(batch.iter()) {
            assert_eq!(coverage(&f, p, 4).unwrap().to_bits(), b.to_bits());
        }
        // Validation still applies.
        assert!(coverage_many(&f, &ps, 0).is_err());
        let bad = vec![Strategy::uniform(3).unwrap()];
        assert!(coverage_many(&f, &bad, 2).is_err());
        // Empty batch is fine (no work).
        assert_eq!(coverage_many(&f, &[], 2).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn dimension_and_k_validation() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let p3 = Strategy::uniform(3).unwrap();
        let p2 = Strategy::uniform(2).unwrap();
        assert!(coverage(&f, &p3, 2).is_err());
        assert!(coverage(&f, &p2, 0).is_err());
        assert!(miss_mass(&f, &p3, 2).is_err());
        assert!(miss_mass(&f, &p2, 0).is_err());
        assert!(coverage_gradient(&f, &p3, 2).is_err());
        assert!(coverage_gradient(&f, &p2, 0).is_err());
        assert!(coverage_profile(&f, &[]).is_err());
        assert!(coverage_profile(&f, &[p3]).is_err());
    }

    #[test]
    fn observation1_bound_below_ceiling() {
        let f = ValueProfile::zipf(50, 1.0, 1.0).unwrap();
        for k in [1usize, 3, 10] {
            assert!(observation1_bound(&f, k) < coordinated_ceiling(&f, k));
        }
    }

    #[test]
    fn uniform_on_top_beats_observation1_bound() {
        // The proof of Observation 1: p-hat = uniform on [k] already beats
        // the (1 - 1/e) bound.
        for (m, k) in [(10usize, 3usize), (50, 10), (5, 5)] {
            let f = ValueProfile::zipf(m, 1.0, 0.6).unwrap();
            let phat = Strategy::uniform_on_top(m, k).unwrap();
            let c = coverage(&f, &phat, k).unwrap();
            assert!(c > observation1_bound(&f, k), "m={m} k={k}");
        }
    }
}
