//! Stable combinatorial numerics shared by the analytic evaluators.
//!
//! Everything here is exact-in-expectation combinatorics: binomial
//! coefficients in log space, binomial/Bernstein probability masses, and the
//! Poisson–binomial distribution (the law of a sum of independent but
//! *non-identical* Bernoulli variables). The latter is what lets the ESS
//! checker evaluate multi-opponent payoffs `E(ρ; σ^a, π^b)` exactly instead
//! of by Monte Carlo.

/// Natural log of `n!` via the Stirling-free product for small `n` and a
/// cached table. `n` never exceeds a few thousand in this crate, so a plain
/// iterative sum is both exact enough and fast.
pub fn ln_factorial(n: usize) -> f64 {
    // Compensated sum of ln(i): thousands of similar-magnitude terms
    // accumulate here, and `float-reduction` holds this file to the
    // order-robust helpers.
    kahan_sum((2..=n).map(|i| (i as f64).ln()))
}

/// Natural log of the binomial coefficient `C(n, k)`.
pub fn ln_binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// The binomial probability mass `P[Bin(n, p) = j]`, computed stably.
///
/// Returns 0 for `j > n`. Handles the boundary probabilities `p = 0` and
/// `p = 1` exactly.
pub fn binomial_pmf(n: usize, j: usize, p: f64) -> f64 {
    if j > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if j == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if j == n { 1.0 } else { 0.0 };
    }
    let ln_pmf = ln_binomial(n, j) + (j as f64) * p.ln() + ((n - j) as f64) * (1.0 - p).ln();
    ln_pmf.exp()
}

/// The full binomial PMF vector `[P[Bin(n,p) = j]]_{j=0..=n}` computed with
/// a single forward recurrence (faster and smoother than `n+1` independent
/// log-space evaluations).
pub fn binomial_pmf_vector(n: usize, p: f64) -> Vec<f64> {
    let mut pmf = vec![0.0; n + 1];
    if p <= 0.0 {
        pmf[0] = 1.0;
        return pmf;
    }
    if p >= 1.0 {
        pmf[n] = 1.0;
        return pmf;
    }
    // Start at the mode in log space to avoid underflow at either tail.
    let mode = (((n + 1) as f64) * p).floor().min(n as f64) as usize;
    let ln_mode =
        ln_binomial(n, mode) + (mode as f64) * p.ln() + ((n - mode) as f64) * (1.0 - p).ln();
    pmf[mode] = ln_mode.exp();
    // pmf[j+1]/pmf[j] = (n-j)/(j+1) * p/(1-p)
    let ratio = p / (1.0 - p);
    for j in mode..n {
        pmf[j + 1] = pmf[j] * ((n - j) as f64) / ((j + 1) as f64) * ratio;
    }
    for j in (0..mode).rev() {
        pmf[j] = pmf[j + 1] * ((j + 1) as f64) / ((n - j) as f64) / ratio;
    }
    pmf
}

/// Bernstein basis polynomial `b_{j,n}(q) = C(n,j) q^j (1-q)^{n-j}`.
///
/// This is just the binomial PMF, but named for its role in derivative
/// formulas.
#[inline]
pub fn bernstein(n: usize, j: usize, q: f64) -> f64 {
    binomial_pmf(n, j, q)
}

/// One in-place step of the Poisson–binomial convolution DP: fold a single
/// `Bernoulli(p)` coin into `pmf`, which currently holds the PMF of `count`
/// coins in `pmf[0..=count]` (entries above are ignored and overwritten at
/// `count + 1`). Requires `pmf.len() >= count + 2`.
///
/// This is the shared primitive behind [`poisson_binomial_pmf`] and the
/// batched [`crate::kernel::PbTable`] — both perform the *identical*
/// floating-point operation sequence, so a table built by repeated pushes
/// is bit-identical to the one-shot DP.
pub fn convolve_bernoulli(pmf: &mut [f64], count: usize, p: f64) {
    debug_assert!((0.0..=1.0).contains(&p), "bernoulli prob out of range: {p}");
    debug_assert!(pmf.len() >= count + 2, "pmf buffer too small for convolution step");
    // Dispatched through `simd::convolve_step`; the AVX2 lane is
    // bit-identical to the scalar downward recurrence (elementwise over
    // the previous round's values, no FMA), so every bitwise contract
    // on this primitive holds on either lane.
    crate::simd::convolve_step(pmf, count, p);
}

/// Exact Poisson–binomial PMF: the distribution of `Σ_i X_i` where
/// `X_i ~ Bernoulli(probs[i])` independently.
///
/// Runs the standard O(n²) convolution DP, which is exact (no FFT round-off)
/// and fast for the population sizes used here (`n = k − 1 ≤ a few hundred`).
pub fn poisson_binomial_pmf(probs: &[f64]) -> Vec<f64> {
    let n = probs.len();
    let mut pmf = vec![0.0; n + 1];
    pmf[0] = 1.0;
    for (i, &p) in probs.iter().enumerate() {
        convolve_bernoulli(&mut pmf, i, p);
    }
    pmf
}

/// Expectation `E[h(L)]` where `L ~ PoissonBinomial(probs)` and `h` is given
/// by its value table `h[j]` for `j = 0..=probs.len()`.
pub fn poisson_binomial_expectation(probs: &[f64], h: &[f64]) -> f64 {
    let pmf = poisson_binomial_pmf(probs);
    debug_assert!(h.len() >= pmf.len());
    // Kahan dot, matching `kernel::PbTable::expectation` term-for-term so
    // the one-shot and table-backed paths agree bit-for-bit.
    kahan_sum(pmf.iter().zip(h.iter()).map(|(p, v)| p * v))
}

/// Simple scalar bisection on a monotone (non-increasing) function.
///
/// Finds `x ∈ [lo, hi]` with `f(x) ≈ target`, assuming `f(lo) ≥ target ≥
/// f(hi)` up to numerical slack. Returns the midpoint after `iters`
/// halvings; 100 iterations give ~2⁻¹⁰⁰ relative interval width.
pub fn bisect_decreasing<F: FnMut(f64) -> f64>(
    mut f: F,
    mut lo: f64,
    mut hi: f64,
    target: f64,
    iters: usize,
) -> f64 {
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if f(mid) >= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Incremental Kahan-compensated accumulator.
///
/// The streaming form of [`kahan_sum`]: `push` performs exactly the same
/// floating-point operation sequence per term, so the running [`value`]
/// after `i` pushes is bit-identical to `kahan_sum` over the first `i`
/// items. Prefix-sum tables (e.g. the log-factorial row behind
/// `GTable`) lean on that equivalence to stay bit-identical to the
/// one-shot helpers.
///
/// [`value`]: Kahan::value
#[derive(Debug, Clone, Copy, Default)]
pub struct Kahan {
    sum: f64,
    comp: f64,
}

impl Kahan {
    /// Fresh accumulator at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one term into the compensated sum.
    #[inline]
    pub fn push(&mut self, x: f64) {
        let y = x - self.comp;
        let t = self.sum + y;
        self.comp = (t - self.sum) - y;
        self.sum = t;
    }

    /// The compensated running total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum
    }
}

/// Kahan-compensated sum, used where thousands of similar-magnitude terms
/// accumulate (coverage over large `M`).
pub fn kahan_sum<I: IntoIterator<Item = f64>>(items: I) -> f64 {
    let mut acc = Kahan::new();
    for x in items {
        acc.push(x);
    }
    acc.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn ln_factorial_small_values() {
        assert_close(ln_factorial(0), 0.0, 1e-12);
        assert_close(ln_factorial(1), 0.0, 1e-12);
        assert_close(ln_factorial(5), 120f64.ln(), 1e-12);
        assert_close(ln_factorial(10), 3628800f64.ln(), 1e-10);
    }

    #[test]
    fn ln_binomial_matches_pascal() {
        for n in 0..20usize {
            for k in 0..=n {
                let direct = {
                    // Pascal's triangle by u128 arithmetic.
                    let mut c: u128 = 1;
                    for i in 0..k {
                        c = c * ((n - i) as u128) / ((i + 1) as u128);
                    }
                    c as f64
                };
                assert_close(ln_binomial(n, k).exp(), direct, direct * 1e-10 + 1e-10);
            }
        }
    }

    #[test]
    fn ln_binomial_out_of_range() {
        assert_eq!(ln_binomial(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &n in &[0usize, 1, 2, 7, 33] {
            for &p in &[0.0, 0.1, 0.5, 0.73, 1.0] {
                let total: f64 = (0..=n).map(|j| binomial_pmf(n, j, p)).sum();
                assert_close(total, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn binomial_pmf_degenerate_probabilities() {
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 1, 0.0), 0.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 4, 1.0), 0.0);
        assert_eq!(binomial_pmf(5, 6, 0.5), 0.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn binomial_pmf_vector_matches_pointwise() {
        for &n in &[0usize, 1, 4, 17, 64] {
            for &p in &[0.0, 0.02, 0.3, 0.5, 0.97, 1.0] {
                let vec = binomial_pmf_vector(n, p);
                assert_eq!(vec.len(), n + 1);
                for j in 0..=n {
                    assert_close(vec[j], binomial_pmf(n, j, p), 1e-12);
                }
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn poisson_binomial_matches_binomial_when_iid() {
        let p = 0.37;
        let n = 9;
        let pmf = poisson_binomial_pmf(&vec![p; n]);
        for j in 0..=n {
            assert_close(pmf[j], binomial_pmf(n, j, p), 1e-12);
        }
    }

    #[test]
    fn poisson_binomial_empty() {
        let pmf = poisson_binomial_pmf(&[]);
        assert_eq!(pmf, vec![1.0]);
    }

    #[test]
    fn poisson_binomial_mean_is_sum_of_probs() {
        let probs = [0.1, 0.9, 0.33, 0.5, 0.02];
        let pmf = poisson_binomial_pmf(&probs);
        let mean: f64 = pmf.iter().enumerate().map(|(j, p)| j as f64 * p).sum();
        assert_close(mean, probs.iter().sum(), 1e-12);
    }

    #[test]
    fn poisson_binomial_mixed_exact_two() {
        // Two coins 0.5 and 0.25: P[0]=0.375, P[1]=0.5, P[2]=0.125.
        let pmf = poisson_binomial_pmf(&[0.5, 0.25]);
        assert_close(pmf[0], 0.375, 1e-15);
        assert_close(pmf[1], 0.5, 1e-15);
        assert_close(pmf[2], 0.125, 1e-15);
    }

    #[test]
    fn poisson_binomial_expectation_linear_function() {
        // E[L] via the expectation helper with h(j) = j.
        let probs = [0.2, 0.7, 0.4];
        let h: Vec<f64> = (0..=3).map(|j| j as f64).collect();
        assert_close(poisson_binomial_expectation(&probs, &h), 1.3, 1e-12);
    }

    #[test]
    fn bisect_finds_root_of_decreasing_function() {
        // f(x) = 2 - x on [0, 2], target 0.5 -> x = 1.5.
        let x = bisect_decreasing(|x| 2.0 - x, 0.0, 2.0, 0.5, 80);
        assert_close(x, 1.5, 1e-12);
    }

    #[test]
    fn kahan_sum_is_accurate() {
        // 1 + 1e-16 added 1e5 times loses the small term in naive order.
        let items = std::iter::once(1.0).chain(std::iter::repeat_n(1e-16, 100_000));
        let s = kahan_sum(items);
        assert_close(s, 1.0 + 1e-11, 1e-14);
    }

    #[test]
    fn bernstein_is_binomial_pmf() {
        assert_close(bernstein(4, 2, 0.3), binomial_pmf(4, 2, 0.3), 0.0);
    }

    // `miri_*` tests form the CI Miri subset: small, allocation-light
    // exercises of the unsafe-adjacent numerics (slice indexing, in-place
    // DP updates) that finish in seconds under the interpreter.

    #[test]
    fn miri_kahan_incremental_matches_one_shot() {
        let items = [1.0, 1e-16, -0.25, 3.5, 1e-16];
        let mut acc = Kahan::new();
        for (i, &x) in items.iter().enumerate() {
            acc.push(x);
            let prefix = kahan_sum(items[..=i].iter().copied());
            assert_eq!(acc.value().to_bits(), prefix.to_bits());
        }
    }

    #[test]
    fn miri_convolve_bernoulli_in_place() {
        let mut pmf = vec![1.0, 0.0, 0.0];
        convolve_bernoulli(&mut pmf, 0, 0.25);
        convolve_bernoulli(&mut pmf, 1, 0.5);
        assert_close(pmf[0], 0.375, 1e-15);
        assert_close(pmf[1], 0.5, 1e-15);
        assert_close(pmf[2], 0.125, 1e-15);
    }

    #[test]
    fn miri_binomial_pmf_vector_small() {
        let pmf = binomial_pmf_vector(3, 0.5);
        for (j, &p) in pmf.iter().enumerate() {
            assert_close(p, binomial_pmf(3, j, 0.5), 1e-14);
        }
        assert_close(kahan_sum(pmf.iter().copied()), 1.0, 1e-14);
    }
}
