//! Pure (asymmetric) strategy profiles and pure Nash equilibria.
//!
//! Section 1.2 of the paper contrasts symmetric mixed equilibria with pure
//! ones: the dispersal game has exponentially many pure equilibria, but
//! selecting one requires coordination, which the model forbids. This
//! module makes that discussion concrete:
//!
//! * the dispersal game under any congestion policy is a **congestion game
//!   in Rosenthal's sense** — the payoff of a player depends only on its
//!   own site and the number of players there — so it admits the exact
//!   potential `Φ(s) = Σ_x Σ_{j=1}^{ℓ_x(s)} f(x)·C(j)`;
//! * best-response dynamics strictly increases `Φ` and therefore reaches a
//!   pure Nash equilibrium in finite time;
//! * for small instances, pure equilibria can be enumerated outright,
//!   exhibiting both their abundance and the fact that the best of them
//!   (a perfect assignment) beats every symmetric strategy's coverage.

use crate::error::{Error, Result};
use crate::payoff::PayoffContext;
use crate::policy::Congestion;
use crate::value::ValueProfile;
use serde::{Deserialize, Serialize};

/// A pure strategy profile: `sites[i]` is the site chosen by player `i`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PureProfile {
    sites: Vec<usize>,
}

impl PureProfile {
    /// Build a profile, validating site indices against `m` sites.
    pub fn new(sites: Vec<usize>, m: usize) -> Result<Self> {
        if sites.is_empty() {
            return Err(Error::InvalidPlayerCount { k: 0 });
        }
        for (i, &s) in sites.iter().enumerate() {
            if s >= m {
                return Err(Error::InvalidArgument(format!(
                    "player {i} chose site {s} out of {m}"
                )));
            }
        }
        Ok(Self { sites })
    }

    /// Number of players.
    pub fn k(&self) -> usize {
        self.sites.len()
    }

    /// Site chosen by player `i`.
    pub fn site(&self, i: usize) -> usize {
        self.sites[i]
    }

    /// Per-site occupancy over `m` sites.
    pub fn occupancy(&self, m: usize) -> Vec<usize> {
        let mut occ = vec![0usize; m];
        for &s in &self.sites {
            occ[s] += 1;
        }
        occ
    }

    /// Realized coverage of this profile.
    pub fn coverage(&self, f: &ValueProfile) -> f64 {
        let occ = self.occupancy(f.len());
        occ.iter().enumerate().filter(|(_, &n)| n > 0).map(|(x, _)| f.value(x)).sum()
    }

    /// Payoff of player `i` under policy table `c_table` (`c_table[j] =
    /// C(j+1)`).
    fn payoff_of(&self, f: &ValueProfile, c_table: &[f64], occ: &[usize], i: usize) -> f64 {
        let x = self.sites[i];
        f.value(x) * c_table[(occ[x] - 1).min(c_table.len() - 1)]
    }
}

/// Rosenthal's exact potential `Φ(s) = Σ_x Σ_{j=1}^{ℓ_x} f(x)·C(j)`.
///
/// For any unilateral deviation, the change in the deviator's payoff
/// equals the change in `Φ` — the defining property of an exact potential.
pub fn rosenthal_potential(
    c: &dyn Congestion,
    f: &ValueProfile,
    profile: &PureProfile,
) -> Result<f64> {
    let ctx = PayoffContext::new(c, profile.k())?;
    let c_table = ctx.c_table();
    let occ = profile.occupancy(f.len());
    let mut phi = 0.0;
    for (x, &ell) in occ.iter().enumerate() {
        for j in 0..ell {
            phi += f.value(x) * c_table[j.min(c_table.len() - 1)];
        }
    }
    Ok(phi)
}

/// Check whether a pure profile is a Nash equilibrium; returns the best
/// improving deviation `(player, new_site, gain)` if one exists.
pub fn best_deviation(
    c: &dyn Congestion,
    f: &ValueProfile,
    profile: &PureProfile,
) -> Result<Option<(usize, usize, f64)>> {
    let ctx = PayoffContext::new(c, profile.k())?;
    let c_table = ctx.c_table();
    let mut occ = profile.occupancy(f.len());
    let mut best: Option<(usize, usize, f64)> = None;
    for i in 0..profile.k() {
        let current = profile.payoff_of(f, c_table, &occ, i);
        let home = profile.site(i);
        for y in 0..f.len() {
            if y == home {
                continue;
            }
            // Payoff if player i moves to y: occupancy there becomes occ[y]+1.
            occ[home] -= 1;
            occ[y] += 1;
            let moved = f.value(y) * c_table[(occ[y] - 1).min(c_table.len() - 1)];
            occ[home] += 1;
            occ[y] -= 1;
            let gain = moved - current;
            if gain > 1e-12 && best.as_ref().is_none_or(|b| gain > b.2) {
                best = Some((i, y, gain));
            }
        }
    }
    Ok(best)
}

/// True when `profile` is a pure Nash equilibrium.
pub fn is_pure_nash(c: &dyn Congestion, f: &ValueProfile, profile: &PureProfile) -> Result<bool> {
    Ok(best_deviation(c, f, profile)?.is_none())
}

/// Run best-response dynamics from `start` until a pure Nash equilibrium
/// is reached (guaranteed by the potential argument). Returns the
/// equilibrium and the number of improving moves made.
pub fn best_response_dynamics(
    c: &dyn Congestion,
    f: &ValueProfile,
    start: PureProfile,
    max_moves: usize,
) -> Result<(PureProfile, usize)> {
    let mut profile = start;
    for moves in 0..max_moves {
        match best_deviation(c, f, &profile)? {
            None => return Ok((profile, moves)),
            Some((player, site, _)) => {
                profile.sites[player] = site;
            }
        }
    }
    Err(Error::NoConvergence { what: "best-response dynamics", residual: f64::NAN })
}

/// Summary of exhaustive pure-equilibrium enumeration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PureEquilibria {
    /// Number of pure Nash equilibria.
    pub count: usize,
    /// Total profiles examined (`M^k`).
    pub profiles: usize,
    /// Lowest equilibrium coverage.
    pub worst_coverage: f64,
    /// Highest equilibrium coverage.
    pub best_coverage: f64,
}

/// Enumerate all `M^k` pure profiles (small instances only: the product is
/// capped at `limit` to avoid accidental blow-ups).
pub fn enumerate_pure_equilibria(
    c: &dyn Congestion,
    f: &ValueProfile,
    k: usize,
    limit: usize,
) -> Result<PureEquilibria> {
    if k == 0 {
        return Err(Error::InvalidPlayerCount { k });
    }
    let m = f.len();
    let total = m
        .checked_pow(k as u32)
        .ok_or_else(|| Error::InvalidArgument(format!("M^k overflows for M = {m}, k = {k}")))?;
    if total > limit {
        return Err(Error::InvalidArgument(format!(
            "enumeration of {total} profiles exceeds limit {limit}"
        )));
    }
    let mut count = 0usize;
    let mut worst = f64::INFINITY;
    let mut best = f64::NEG_INFINITY;
    let mut sites = vec![0usize; k];
    for code in 0..total {
        let mut rest = code;
        for slot in sites.iter_mut() {
            *slot = rest % m;
            rest /= m;
        }
        let profile = PureProfile { sites: sites.clone() };
        if is_pure_nash(c, f, &profile)? {
            count += 1;
            let cov = profile.coverage(f);
            worst = worst.min(cov);
            best = best.max(cov);
        }
    }
    Ok(PureEquilibria { count, profiles: total, worst_coverage: worst, best_coverage: best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::coverage;
    use crate::optimal::optimal_coverage;
    use crate::policy::{Exclusive, Sharing};

    #[test]
    fn profile_validation() {
        assert!(PureProfile::new(vec![], 2).is_err());
        assert!(PureProfile::new(vec![0, 2], 2).is_err());
        let p = PureProfile::new(vec![0, 1, 0], 2).unwrap();
        assert_eq!(p.k(), 3);
        assert_eq!(p.occupancy(2), vec![2, 1]);
    }

    #[test]
    fn coverage_counts_each_site_once() {
        let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
        let p = PureProfile::new(vec![0, 0, 1], 2).unwrap();
        assert!((p.coverage(&f) - 1.5).abs() < 1e-15);
    }

    #[test]
    fn potential_is_exact() {
        // Unilateral deviation changes the deviator's payoff by exactly
        // the potential difference.
        let f = ValueProfile::new(vec![1.0, 0.6, 0.3]).unwrap();
        for c in [&Exclusive as &dyn Congestion, &Sharing] {
            let before = PureProfile::new(vec![0, 0, 1], 3).unwrap();
            let after = PureProfile::new(vec![2, 0, 1], 3).unwrap(); // player 0 moves 0 -> 2
            let phi_before = rosenthal_potential(c, &f, &before).unwrap();
            let phi_after = rosenthal_potential(c, &f, &after).unwrap();
            let ctx = PayoffContext::new(c, 3).unwrap();
            let table = ctx.c_table();
            let occ_before = before.occupancy(3);
            let occ_after = after.occupancy(3);
            let pay_before = f.value(0) * table[occ_before[0] - 1];
            let pay_after = f.value(2) * table[occ_after[2] - 1];
            assert!(
                ((phi_after - phi_before) - (pay_after - pay_before)).abs() < 1e-12,
                "{}: potential not exact",
                c.name()
            );
        }
    }

    #[test]
    fn perfect_assignment_is_pure_nash_under_exclusive() {
        let f = ValueProfile::new(vec![1.0, 0.7, 0.4, 0.2]).unwrap();
        let assignment = PureProfile::new(vec![0, 1, 2], 4).unwrap();
        assert!(is_pure_nash(&Exclusive, &f, &assignment).unwrap());
        // And its coverage is the coordination ceiling.
        assert!((assignment.coverage(&f) - f.top_sum(3)).abs() < 1e-12);
    }

    #[test]
    fn stacked_profile_is_not_nash() {
        let f = ValueProfile::new(vec![1.0, 0.7]).unwrap();
        let stacked = PureProfile::new(vec![0, 0], 2).unwrap();
        let dev = best_deviation(&Exclusive, &f, &stacked).unwrap();
        assert!(dev.is_some());
        let (_, site, gain) = dev.unwrap();
        assert_eq!(site, 1);
        assert!((gain - 0.7).abs() < 1e-12);
    }

    #[test]
    fn best_response_reaches_equilibrium_and_potential_increases() {
        let f = ValueProfile::new(vec![1.0, 0.8, 0.5, 0.2]).unwrap();
        for c in [&Exclusive as &dyn Congestion, &Sharing] {
            let start = PureProfile::new(vec![0, 0, 0, 0], 4).unwrap();
            let phi0 = rosenthal_potential(c, &f, &start).unwrap();
            let (eq, moves) = best_response_dynamics(c, &f, start, 1000).unwrap();
            assert!(is_pure_nash(c, &f, &eq).unwrap());
            assert!(moves > 0);
            let phi1 = rosenthal_potential(c, &f, &eq).unwrap();
            assert!(phi1 > phi0, "{}: potential did not increase", c.name());
        }
    }

    #[test]
    fn equilibrium_count_grows_with_k_exclusive_uniform() {
        // Under exclusive with distinct-enough sites, pure equilibria are
        // the injective assignments onto the top-k sites: their number is
        // k! * C(count of viable arrangements) — at minimum it grows like
        // the factorial of k.
        let f = ValueProfile::new(vec![1.0, 0.9, 0.8]).unwrap();
        let e2 = enumerate_pure_equilibria(&Exclusive, &f, 2, 100_000).unwrap();
        let e3 = enumerate_pure_equilibria(&Exclusive, &f, 3, 100_000).unwrap();
        assert!(e2.count > 0);
        assert!(e3.count > e2.count, "{} vs {}", e3.count, e2.count);
        // k=3, M=3 exclusive: equilibria are exactly the 3! permutations.
        assert_eq!(e3.count, 6);
    }

    #[test]
    fn best_pure_equilibrium_beats_symmetric_optimum() {
        let f = ValueProfile::new(vec![1.0, 0.7, 0.4]).unwrap();
        let k = 2;
        let pure = enumerate_pure_equilibria(&Exclusive, &f, k, 100_000).unwrap();
        let sym = optimal_coverage(&f, k).unwrap();
        assert!(
            pure.best_coverage > sym.coverage,
            "coordination should beat symmetric: {} vs {}",
            pure.best_coverage,
            sym.coverage
        );
        assert!((pure.best_coverage - f.top_sum(k)).abs() < 1e-12);
    }

    #[test]
    fn symmetric_equilibrium_coverage_between_worst_and_best_pure() {
        let f = ValueProfile::new(vec![1.0, 0.6, 0.35]).unwrap();
        let k = 3;
        let pure = enumerate_pure_equilibria(&Exclusive, &f, k, 100_000).unwrap();
        let star = crate::sigma_star::sigma_star(&f, k).unwrap();
        let sym_cov = coverage(&f, &star.strategy, k).unwrap();
        assert!(sym_cov <= pure.best_coverage + 1e-12);
        // (the symmetric optimum can be below the worst pure equilibrium
        // or above it depending on the instance; both are legitimate)
        assert!(pure.worst_coverage <= pure.best_coverage);
    }

    #[test]
    fn enumeration_guard_rails() {
        let f = ValueProfile::uniform(10, 1.0).unwrap();
        assert!(enumerate_pure_equilibria(&Exclusive, &f, 0, 1000).is_err());
        assert!(enumerate_pure_equilibria(&Exclusive, &f, 10, 1000).is_err());
    }

    #[test]
    fn sampled_symmetric_strategy_reaches_various_equilibria() {
        // From random starts, best-response dynamics lands on different
        // pure equilibria (the coordination problem of Section 1.2).
        use rand::Rng as _;
        use rand::SeedableRng as _;
        let f = ValueProfile::new(vec![1.0, 0.9, 0.8]).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let mut reached = std::collections::HashSet::new();
        for _ in 0..40 {
            let start = PureProfile::new((0..3).map(|_| rng.gen_range(0..3)).collect(), 3).unwrap();
            let (eq, _) = best_response_dynamics(&Exclusive, &f, start, 1000).unwrap();
            reached.insert(eq.sites.clone());
        }
        assert!(reached.len() > 1, "dynamics always found the same equilibrium");
    }
}
