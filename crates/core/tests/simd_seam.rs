//! SIMD/scalar seam tests: the lane contracts of `dispersal_core::simd`.
//!
//! Two classes of assertion, mirroring the module's documented bounds:
//!
//! * **Fused paths** (`gemv_block4`, `fused_fill`, `fused_dot`): the
//!   AVX2 lane agrees with the scalar lane to ≤ 1e-13 × scale — the
//!   same contract the fused evaluators carry against their scalar
//!   references.
//! * **Bitwise paths** (`convolve_step`, and every *reference*
//!   evaluator): bit-for-bit equality. The reference paths
//!   (`GTable::eval_with`, `GBatch::eval_with`, `PbTable`) never
//!   dispatch through SIMD, so their bits must be unchanged no matter
//!   which lane the process picked.
//!
//! Runtime-gated by construction: the `*_avx2` entry points fall back
//! to the scalar lane on hosts without AVX2/FMA, so on such CI runners
//! every assertion still executes (as scalar-vs-scalar identities) and
//! the suite stays green. On AVX2 hosts they exercise the real
//! intrinsics; `lanes_cover_avx2_on_capable_hosts` pins that this is
//! not vacuous there.

use dispersal_core::kernel::{GBatch, GTable};
use dispersal_core::numerics::binomial_pmf;
use dispersal_core::simd::{
    active_lane, avx2_available, convolve_step_avx2, convolve_step_scalar, force_scalar,
    fused_dot_avx2, fused_dot_scalar, fused_fill_avx2, fused_fill_scalar, gemv_block4_avx2,
    gemv_block4_scalar, Lane, GEMV_BLOCK,
};
use proptest::prelude::*;

/// Pre-divided fused-walk factors for degree `n` — the same formulas
/// `GTable`/`GBatch` precompute (`(n−j)/(j+1)` up, `(j+1)/(n−j)` down).
fn walk_factors(n: usize) -> (Vec<f64>, Vec<f64>) {
    let up = (0..n).map(|j| ((n - j) as f64) / ((j + 1) as f64)).collect();
    let down = (0..n).map(|j| ((j + 1) as f64) / ((n - j) as f64)).collect();
    (up, down)
}

/// Mode seed for the walk at `q`, from the exact binomial PMF.
fn mode_seed(n: usize, q: f64) -> (usize, f64) {
    let mode = (((n + 1) as f64) * q).floor().min(n as f64) as usize;
    (mode, binomial_pmf(n, mode, q))
}

#[test]
fn lanes_cover_avx2_on_capable_hosts() {
    // Non-vacuity: on an AVX2+FMA host without the force-scalar switch,
    // the dispatched lane must actually be Avx2 — otherwise every
    // comparison below silently degenerates to scalar-vs-scalar.
    if avx2_available() && !force_scalar() {
        assert_eq!(active_lane(), Lane::Avx2);
    } else {
        assert_eq!(active_lane(), Lane::Scalar);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// AVX2 `gbatch_gemm` lane vs the scalar unroll: ≤ 1e-13 × scale on
    /// random padded policy-major matrices.
    #[test]
    fn gemv_lanes_agree_to_contract(
        rows in 1usize..10,
        cols in 1usize..70,
        factor in 0.25f64..4.0,
        seed_cells in proptest::collection::vec(-5.0f64..5.0, 1..=700),
        basis_seed in proptest::collection::vec(0.0f64..1.0, 1..=70),
    ) {
        let padded = rows.div_ceil(GEMV_BLOCK) * GEMV_BLOCK;
        let mut matrix = vec![0.0f64; padded * cols];
        for (slot, v) in matrix.iter_mut().take(rows * cols).zip(seed_cells.iter().cycle()) {
            *slot = *v;
        }
        let basis: Vec<f64> =
            (0..cols).map(|j| basis_seed[j % basis_seed.len()]).collect();
        let scale = matrix.iter().fold(1.0f64, |a, &c| a.max(c.abs()));
        let mut out_s = vec![0.0f64; rows];
        let mut out_v = vec![0.0f64; rows];
        gemv_block4_scalar(&matrix, cols, rows, &basis, factor, &mut out_s);
        gemv_block4_avx2(&matrix, cols, rows, &basis, factor, &mut out_v);
        // Basis entries are ≤ 1 and cols ≤ 70, so row dots are bounded by
        // cols × scale; 1e-13 × (cols × scale) is the documented O(k·ε).
        let bound = 1e-13 * (cols as f64) * scale * factor.max(1.0);
        for (s, v) in out_s.iter().zip(out_v.iter()) {
            prop_assert!((s - v).abs() <= bound, "{s} vs {v} (bound {bound})");
        }
    }

    /// AVX2 fused-basis fill vs the scalar walk: every basis entry
    /// within 1e-13 (the column is a probability vector, scale 1).
    #[test]
    fn fused_fill_lanes_agree_to_contract(n in 1usize..200, q in 0.001f64..0.999) {
        let (up, down) = walk_factors(n);
        let (mode, b_mode) = mode_seed(n, q);
        let ratio = q / (1.0 - q);
        let inv_ratio = (1.0 - q) / q;
        let mut basis_s = vec![0.0f64; n + 1];
        let mut basis_v = vec![0.0f64; n + 1];
        fused_fill_scalar(&mut basis_s, &up, &down, mode, b_mode, ratio, inv_ratio);
        fused_fill_avx2(&mut basis_v, &up, &down, mode, b_mode, ratio, inv_ratio);
        for (j, (s, v)) in basis_s.iter().zip(basis_v.iter()).enumerate() {
            prop_assert!((s - v).abs() <= 1e-13, "j={j}: {s} vs {v}");
        }
    }

    /// AVX2 fused dot (the `eval_fused` walk) vs scalar: ≤ 1e-13 × the
    /// coefficient scale.
    #[test]
    fn fused_dot_lanes_agree_to_contract(
        q in 0.001f64..0.999,
        coeffs in proptest::collection::vec(-3.0f64..3.0, 2..=200),
    ) {
        let n = coeffs.len() - 1;
        let (up, down) = walk_factors(n);
        let (mode, b_mode) = mode_seed(n, q);
        let ratio = q / (1.0 - q);
        let inv_ratio = (1.0 - q) / q;
        let s = fused_dot_scalar(&coeffs, &up, &down, mode, b_mode, ratio, inv_ratio);
        let v = fused_dot_avx2(&coeffs, &up, &down, mode, b_mode, ratio, inv_ratio);
        let scale = coeffs.iter().fold(1.0f64, |a, &c| a.max(c.abs()));
        prop_assert!((s - v).abs() <= 1e-13 * scale, "{s} vs {v}");
    }

    /// The convolution lanes are bit-identical on arbitrary PMF chains —
    /// the property that keeps every bitwise `PbTable` contract
    /// lane-independent.
    #[test]
    fn convolve_lanes_are_bitwise_identical(
        probs in proptest::collection::vec(0.0f64..=1.0, 1..=40),
    ) {
        let n = probs.len();
        let mut a = vec![0.0f64; n + 1];
        let mut b = vec![0.0f64; n + 1];
        a[0] = 1.0;
        b[0] = 1.0;
        for (i, &p) in probs.iter().enumerate() {
            convolve_step_scalar(&mut a, i, p);
            convolve_step_avx2(&mut b, i, p);
        }
        for (j, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "index {}", j);
        }
    }

    /// Reference (non-fused) evaluators are untouched by the SIMD
    /// rewrite: `GBatch::eval_with` stays bit-identical to the
    /// per-policy `GTable::eval_with` under whichever lane this process
    /// dispatched (CI runs this test on both lanes via the
    /// force-scalar leg).
    #[test]
    fn reference_paths_are_bitwise_unchanged(
        q in 0.0f64..=1.0,
        decrements in proptest::collection::vec(0.0f64..0.4, 0..=24),
    ) {
        let mut row = vec![1.0f64];
        for d in &decrements {
            row.push(row.last().copied().unwrap_or(1.0) - d);
        }
        let batch = GBatch::from_rows(vec![row.clone()]).expect("batch");
        let table = GTable::from_coefficients(row).expect("table");
        let mut scratch = batch.scratch();
        let mut out = vec![0.0f64; 1];
        batch.eval_with(&mut scratch, q, &mut out).expect("eval");
        let reference = table.eval_with(&mut table.scratch(), q);
        prop_assert_eq!(out[0].to_bits(), reference.to_bits());
    }
}
