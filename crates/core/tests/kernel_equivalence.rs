//! CI smoke test: the batched kernel cannot silently diverge from the
//! scalar reference path, checked at `k = 256` (the largest player count
//! the benches exercise). Run explicitly in CI via
//! `cargo test --release -p dispersal-core --test kernel_equivalence`.

use dispersal_core::ess::{ess_ledger, reference_ledger};
use dispersal_core::kernel::{GBatch, GTable, PbTable};
use dispersal_core::numerics::poisson_binomial_pmf;
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::{Congestion, Exclusive, PowerLaw, Sharing, TwoLevel};
use dispersal_core::sigma_star::sigma_star;
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;

const K: usize = 256;

fn policies() -> [&'static dyn Congestion; 4] {
    [&Exclusive, &Sharing, &TwoLevel { c: -0.4 }, &PowerLaw { beta: 2.0 }]
}

fn dense_grid() -> Vec<f64> {
    (0..=2048).map(|i| i as f64 / 2048.0).collect()
}

#[test]
fn kernel_is_bit_identical_to_scalar_g_at_k256() {
    for c in policies() {
        let ctx = PayoffContext::new(c, K).unwrap();
        let table = GTable::new(c, K).unwrap();
        let mut scratch = table.scratch();
        for &q in dense_grid().iter() {
            let scalar = ctx.g(q).unwrap();
            let batched = table.eval_with(&mut scratch, q);
            assert_eq!(
                scalar.to_bits(),
                batched.to_bits(),
                "{} q={q}: scalar {scalar} vs kernel {batched}",
                c.name()
            );
        }
    }
}

#[test]
fn kernel_prime_is_bit_identical_to_scalar_g_prime_at_k256() {
    for c in policies() {
        let ctx = PayoffContext::new(c, K).unwrap();
        let table = GTable::new(c, K).unwrap();
        let mut scratch = table.scratch();
        for &q in dense_grid().iter() {
            assert_eq!(
                ctx.g_prime(q).to_bits(),
                table.eval_prime_with(&mut scratch, q).to_bits(),
                "{} q={q}",
                c.name()
            );
        }
    }
}

#[test]
fn fused_path_is_within_contract_at_k256() {
    for c in policies() {
        let ctx = PayoffContext::new(c, K).unwrap();
        let table = GTable::new(c, K).unwrap();
        let tol = 1e-13 * table.scale();
        for &q in dense_grid().iter() {
            let scalar = ctx.g(q).unwrap();
            let fused = table.eval_fused(q);
            assert!(
                (scalar - fused).abs() <= tol,
                "{} q={q}: scalar {scalar} vs fused {fused}",
                c.name()
            );
        }
    }
}

#[test]
fn gbatch_reference_is_bit_identical_and_gemm_within_contract_at_k256() {
    // The policy-batched SoA evaluator, checked at the same k = 256 bar as
    // the per-policy kernel: reference mode bitwise against GTable's exact
    // path, fused GEMM within 1e-13 of per-policy eval_fused.
    let batch = GBatch::new(&policies(), K).unwrap();
    let tables: Vec<GTable> = policies().iter().map(|c| GTable::new(*c, K).unwrap()).collect();
    let mut scratch = batch.scratch();
    let mut reference = vec![0.0; batch.rows()];
    let mut gemm = vec![0.0; batch.rows()];
    let tol = 1e-13 * batch.scale();
    for &q in dense_grid().iter() {
        batch.eval_with(&mut scratch, q, &mut reference).unwrap();
        batch.eval_fused_into(&mut scratch, q, &mut gemm).unwrap();
        for (r, table) in tables.iter().enumerate() {
            let mut ts = table.scratch();
            let exact = table.eval_with(&mut ts, q);
            assert_eq!(
                reference[r].to_bits(),
                exact.to_bits(),
                "row {r} q={q}: batch {} vs exact {exact}",
                reference[r]
            );
            let fused = table.eval_fused(q);
            assert!(
                (gemm[r] - fused).abs() <= tol,
                "row {r} q={q}: gemm {} vs fused {fused}",
                gemm[r]
            );
        }
    }
}

#[test]
fn pb_table_is_bit_identical_to_one_shot_dp_at_k256() {
    // 255 heterogeneous Bernoulli factors (one per opponent at k = 256):
    // the incrementally built table must match the one-shot DP bitwise.
    let probs: Vec<f64> = (0..K - 1).map(|i| (i as f64 + 0.5) / K as f64).collect();
    let table = PbTable::from_probs(&probs).unwrap();
    let reference = poisson_binomial_pmf(&probs);
    for (j, (&a, &b)) in table.pmf().iter().zip(reference.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "pmf[{j}]");
    }
}

#[test]
fn ess_ledger_matches_pre_kernel_path_at_k256() {
    // Acceptance check for the kernel-backed ESS checker: the rank-update
    // ledger agrees with the pre-kernel per-site-DP path to 1e-12 at
    // k = 256 (bit-identical at level 0, where the exact DP is used).
    let f = ValueProfile::zipf(6, 1.0, 1.0).unwrap();
    let k = K;
    let ctx = PayoffContext::new(&Exclusive, k).unwrap();
    let sigma = sigma_star(&f, k).unwrap().strategy;
    let pi = Strategy::uniform(6).unwrap();
    let fast = ess_ledger(&ctx, &f, &sigma, &pi).unwrap();
    let reference = reference_ledger(&ctx, &f, &sigma, &pi).unwrap();
    assert_eq!(fast.resident[0].to_bits(), reference.resident[0].to_bits());
    assert_eq!(fast.mutant[0].to_bits(), reference.mutant[0].to_bits());
    for ell in 0..k {
        assert!(
            (fast.resident[ell] - reference.resident[ell]).abs() <= 1e-12,
            "resident level {ell}: {} vs {}",
            fast.resident[ell],
            reference.resident[ell]
        );
        assert!(
            (fast.mutant[ell] - reference.mutant[ell]).abs() <= 1e-12,
            "mutant level {ell}: {} vs {}",
            fast.mutant[ell],
            reference.mutant[ell]
        );
    }
}

#[test]
fn interpolation_grid_meets_bound_at_k256() {
    let table = GTable::new(&Sharing, K).unwrap().with_grid(1e-12).unwrap();
    assert!(table.grid_error().unwrap() <= 1e-12 * table.scale());
    let mut scratch = table.scratch();
    // Sample off the refinement's midpoints.
    for i in 0..1000 {
        let q = (i as f64 + 0.31) / 1000.0;
        let exact = table.eval_with(&mut scratch, q);
        let interp = table.eval_fast_with(&mut scratch, q);
        assert!((exact - interp).abs() <= 4.0 * 1e-12, "q={q}: exact {exact} vs interp {interp}");
    }
}
