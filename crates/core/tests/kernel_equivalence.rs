//! CI smoke test: the batched kernel cannot silently diverge from the
//! scalar reference path, checked at `k = 256` (the largest player count
//! the benches exercise). Run explicitly in CI via
//! `cargo test --release -p dispersal-core --test kernel_equivalence`.

use dispersal_core::kernel::GTable;
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::{Congestion, Exclusive, PowerLaw, Sharing, TwoLevel};

const K: usize = 256;

fn policies() -> [&'static dyn Congestion; 4] {
    [&Exclusive, &Sharing, &TwoLevel { c: -0.4 }, &PowerLaw { beta: 2.0 }]
}

fn dense_grid() -> Vec<f64> {
    (0..=2048).map(|i| i as f64 / 2048.0).collect()
}

#[test]
fn kernel_is_bit_identical_to_scalar_g_at_k256() {
    for c in policies() {
        let ctx = PayoffContext::new(c, K).unwrap();
        let table = GTable::new(c, K).unwrap();
        let mut scratch = table.scratch();
        for &q in dense_grid().iter() {
            let scalar = ctx.g(q).unwrap();
            let batched = table.eval_with(&mut scratch, q);
            assert_eq!(
                scalar.to_bits(),
                batched.to_bits(),
                "{} q={q}: scalar {scalar} vs kernel {batched}",
                c.name()
            );
        }
    }
}

#[test]
fn kernel_prime_is_bit_identical_to_scalar_g_prime_at_k256() {
    for c in policies() {
        let ctx = PayoffContext::new(c, K).unwrap();
        let table = GTable::new(c, K).unwrap();
        let mut scratch = table.scratch();
        for &q in dense_grid().iter() {
            assert_eq!(
                ctx.g_prime(q).to_bits(),
                table.eval_prime_with(&mut scratch, q).to_bits(),
                "{} q={q}",
                c.name()
            );
        }
    }
}

#[test]
fn fused_path_is_within_contract_at_k256() {
    for c in policies() {
        let ctx = PayoffContext::new(c, K).unwrap();
        let table = GTable::new(c, K).unwrap();
        let tol = 1e-13 * table.scale();
        for &q in dense_grid().iter() {
            let scalar = ctx.g(q).unwrap();
            let fused = table.eval_fused(q);
            assert!(
                (scalar - fused).abs() <= tol,
                "{} q={q}: scalar {scalar} vs fused {fused}",
                c.name()
            );
        }
    }
}

#[test]
fn interpolation_grid_meets_bound_at_k256() {
    let table = GTable::new(&Sharing, K).unwrap().with_grid(1e-12).unwrap();
    assert!(table.grid_error().unwrap() <= 1e-12 * table.scale());
    let mut scratch = table.scratch();
    // Sample off the refinement's midpoints.
    for i in 0..1000 {
        let q = (i as f64 + 0.31) / 1000.0;
        let exact = table.eval_with(&mut scratch, q);
        let interp = table.eval_fast_with(&mut scratch, q);
        assert!((exact - interp).abs() <= 4.0 * 1e-12, "q={q}: exact {exact} vs interp {interp}");
    }
}
