//! Crate-level property tests for `dispersal-core`: randomized checks of
//! the numerics, the game axioms, and the solver identities.

use dispersal_core::coverage::{coverage, coverage_gradient, miss_mass};
use dispersal_core::kernel::{GBatch, GTable, PbTable};
use dispersal_core::numerics::{
    binomial_pmf, binomial_pmf_vector, kahan_sum, poisson_binomial_pmf,
};
use dispersal_core::payoff::PayoffContext;
use dispersal_core::policy::{Congestion, PowerLaw, Sharing, TableCongestion, TwoLevel};
use dispersal_core::pure::{rosenthal_potential, PureProfile};
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

fn values() -> impl PropStrategy<Value = Vec<f64>> {
    proptest::collection::vec(0.1f64..5.0, 2..=10)
}

/// A random validated (monotone, `C(1) = 1`) congestion table: start at 1
/// and apply non-negative decrements, which may reach negative values
/// (aggression) — every table passes `validate_congestion`.
fn monotone_c_table() -> impl PropStrategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..0.4, 0..=31).prop_map(|decrements| {
        let mut table = vec![1.0];
        for d in decrements {
            let last = *table.last().expect("non-empty");
            table.push(last - d);
        }
        table
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn binomial_pmf_vector_is_a_distribution(n in 0usize..60, p in 0.0f64..=1.0) {
        let pmf = binomial_pmf_vector(n, p);
        prop_assert_eq!(pmf.len(), n + 1);
        let total: f64 = pmf.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-10);
        prop_assert!(pmf.iter().all(|&x| x >= 0.0));
        // Mean = n p.
        let mean: f64 = pmf.iter().enumerate().map(|(j, &q)| j as f64 * q).sum();
        prop_assert!((mean - n as f64 * p).abs() < 1e-8);
    }

    #[test]
    fn poisson_binomial_brute_force_agreement(probs in proptest::collection::vec(0.0f64..=1.0, 1..=6)) {
        // Enumerate all 2^n outcomes and compare.
        let n = probs.len();
        let pmf = poisson_binomial_pmf(&probs);
        let mut brute = vec![0.0; n + 1];
        for mask in 0..(1usize << n) {
            let mut prob = 1.0;
            let mut ones = 0usize;
            for (i, &p) in probs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    prob *= p;
                    ones += 1;
                } else {
                    prob *= 1.0 - p;
                }
            }
            brute[ones] += prob;
        }
        for j in 0..=n {
            prop_assert!((pmf[j] - brute[j]).abs() < 1e-10, "j = {j}: {} vs {}", pmf[j], brute[j]);
        }
    }

    #[test]
    fn kahan_matches_exact_on_small_sets(xs in proptest::collection::vec(-1e3f64..1e3, 0..50)) {
        let naive: f64 = xs.iter().sum();
        let kahan = kahan_sum(xs.iter().copied());
        prop_assert!((naive - kahan).abs() <= 1e-9 * (1.0 + naive.abs()));
    }

    #[test]
    fn g_lies_between_extreme_congestion_values(vals in values(), k in 2usize..=10, q in 0.0f64..=1.0, c in -0.9f64..1.0) {
        let _ = vals;
        let policy = TwoLevel::new(c).unwrap();
        let ctx = PayoffContext::new(&policy, k).unwrap();
        let g = ctx.g(q).unwrap();
        let (lo, hi) = (policy.c(k).min(policy.c(1)), policy.c(1).max(policy.c(k)));
        prop_assert!(g >= lo - 1e-12 && g <= hi + 1e-12, "g({q}) = {g} outside [{lo}, {hi}]");
    }

    #[test]
    fn g_monotone_decreasing_in_q(k in 2usize..=8, beta in 0.1f64..3.0, q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let ctx = PayoffContext::new(&PowerLaw::new(beta).unwrap(), k).unwrap();
        prop_assert!(ctx.g(lo_q).unwrap() >= ctx.g(hi_q).unwrap() - 1e-12);
    }

    #[test]
    fn coverage_gradient_matches_finite_difference(vals in values(), k in 1usize..=6) {
        let f = ValueProfile::from_unsorted(vals).unwrap();
        let p = Strategy::uniform(f.len()).unwrap();
        let grad = coverage_gradient(&f, &p, k).unwrap();
        let h = 1e-6;
        for x in 0..f.len() {
            let mut probs = p.probs().to_vec();
            probs[x] += h;
            let bumped: f64 = f
                .values()
                .iter()
                .zip(probs.iter())
                .map(|(&fx, &px)| fx * (1.0 - (1.0 - px).powi(k as i32)))
                .sum();
            let base = coverage(&f, &p, k).unwrap();
            let fd = (bumped - base) / h;
            prop_assert!((grad[x] - fd).abs() < 1e-3 * (1.0 + grad[x].abs()));
        }
    }

    #[test]
    fn coverage_monotone_under_pointwise_value_increase(vals in values(), k in 1usize..=6, scale in 1.01f64..3.0) {
        let f = ValueProfile::from_unsorted(vals).unwrap();
        let bigger = f.scaled(scale).unwrap();
        let p = Strategy::uniform(f.len()).unwrap();
        prop_assert!(coverage(&bigger, &p, k).unwrap() > coverage(&f, &p, k).unwrap());
    }

    #[test]
    fn miss_mass_decreases_with_k(vals in values()) {
        let f = ValueProfile::from_unsorted(vals).unwrap();
        let p = Strategy::uniform(f.len()).unwrap();
        let mut prev = f64::INFINITY;
        for k in 1..8usize {
            let t = miss_mass(&f, &p, k).unwrap();
            prop_assert!(t <= prev + 1e-12);
            prev = t;
        }
    }

    #[test]
    fn rosenthal_potential_exact_for_random_deviations(
        vals in values(),
        sites in proptest::collection::vec(0usize..10, 2..=6),
        mover in 0usize..6,
        target in 0usize..10,
    ) {
        let f = ValueProfile::from_unsorted(vals).unwrap();
        let m = f.len();
        let k = sites.len();
        let mover = mover % k;
        let target = target % m;
        let sites: Vec<usize> = sites.into_iter().map(|s| s % m).collect();
        let before = PureProfile::new(sites.clone(), m).unwrap();
        let mut moved_sites = sites.clone();
        moved_sites[mover] = target;
        let after = PureProfile::new(moved_sites, m).unwrap();
        let policy = Sharing;
        let ctx = PayoffContext::new(&policy, k).unwrap();
        let table = ctx.c_table();
        let occ_before = before.occupancy(m);
        let occ_after = after.occupancy(m);
        let pay_before = f.value(sites[mover]) * table[occ_before[sites[mover]] - 1];
        let pay_after = f.value(target) * table[occ_after[target] - 1];
        let dphi = rosenthal_potential(&policy, &f, &after).unwrap()
            - rosenthal_potential(&policy, &f, &before).unwrap();
        prop_assert!(
            (dphi - (pay_after - pay_before)).abs() < 1e-9,
            "potential not exact: dphi {dphi} vs dpay {}",
            pay_after - pay_before
        );
    }

    #[test]
    fn gtable_eval_many_matches_scalar_g(
        c_table in monotone_c_table(),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..=64),
    ) {
        let k = c_table.len();
        let policy = TableCongestion::new(c_table, "prop").unwrap();
        let ctx = PayoffContext::new(&policy, k).unwrap();
        let table = GTable::new(&policy, k).unwrap();
        let batch = table.eval_many(&qs);
        for (&q, &batched) in qs.iter().zip(batch.iter()) {
            let scalar = ctx.g(q).unwrap();
            prop_assert!(
                (batched - scalar).abs() <= 1e-13,
                "k = {k} q = {q}: batched {batched} vs scalar {scalar}"
            );
            // The fused throughput path honors the same contract.
            let fused = table.eval_fused(q);
            prop_assert!(
                (fused - scalar).abs() <= 1e-13,
                "k = {k} q = {q}: fused {fused} vs scalar {scalar}"
            );
        }
    }

    #[test]
    fn gbatch_rows_match_per_policy_tables(
        decrements in proptest::collection::vec(0.0f64..0.4, 0..=31),
        factors in proptest::collection::vec(0.1f64..1.0, 2..=6),
        qs in proptest::collection::vec(0.0f64..=1.0, 1..=32),
    ) {
        // All rows share k = decrements.len() + 1 (one k-tile); row r
        // scales the shared decrement sequence by its own factor, giving
        // distinct monotone tables.
        let rows: Vec<Vec<f64>> = factors
            .iter()
            .map(|&s| {
                let mut table = vec![1.0];
                for &d in &decrements {
                    let last = *table.last().expect("non-empty");
                    table.push(last - s * d);
                }
                table
            })
            .collect();
        let tables: Vec<GTable> =
            rows.iter().map(|r| GTable::from_coefficients(r.clone()).unwrap()).collect();
        let batch = GBatch::from_rows(rows).unwrap();
        let mut scratch = batch.scratch();
        let mut ref_out = vec![0.0; batch.rows()];
        let mut fused_out = vec![0.0; batch.rows()];
        let tol = 1e-13 * batch.scale();
        for &q in &qs {
            batch.eval_with(&mut scratch, q, &mut ref_out).unwrap();
            batch.eval_fused_into(&mut scratch, q, &mut fused_out).unwrap();
            for (r, table) in tables.iter().enumerate() {
                let mut ts = table.scratch();
                // Reference mode is bit-identical to the per-policy path.
                let exact = table.eval_with(&mut ts, q);
                prop_assert_eq!(
                    ref_out[r].to_bits(), exact.to_bits(),
                    "row {} q = {}: batch {} vs table {}", r, q, ref_out[r], exact
                );
                // The GEMM path honors the per-policy fused contract.
                let fused = table.eval_fused(q);
                prop_assert!(
                    (fused_out[r] - fused).abs() <= tol,
                    "row {} q = {}: gemm {} vs fused {}", r, q, fused_out[r], fused
                );
            }
        }
    }

    #[test]
    fn g_nonincreasing_for_every_monotone_policy(
        c_table in monotone_c_table(),
        qs in proptest::collection::vec(0.0f64..=1.0, 2..=64),
    ) {
        let k = c_table.len();
        let policy = TableCongestion::new(c_table, "prop").unwrap();
        let table = GTable::new(&policy, k).unwrap();
        let mut sorted = qs;
        sorted.sort_by(f64::total_cmp);
        let values = table.eval_many(&sorted);
        for (w, qw) in values.windows(2).zip(sorted.windows(2)) {
            prop_assert!(
                w[1] <= w[0] + 1e-12,
                "g not nonincreasing at k = {k}: g({}) = {} > g({}) = {}",
                qw[1], w[1], qw[0], w[0]
            );
        }
    }

    #[test]
    fn pb_table_matches_scalar_pmf_and_is_a_distribution(
        probs in proptest::collection::vec(0.0f64..=1.0, 1..=128),
    ) {
        let table = PbTable::from_probs(&probs).unwrap();
        let reference = poisson_binomial_pmf(&probs);
        prop_assert_eq!(table.pmf().len(), reference.len());
        let mut total = 0.0;
        for (j, (&a, &b)) in table.pmf().iter().zip(reference.iter()).enumerate() {
            prop_assert!((a - b).abs() <= 1e-13, "pmf[{j}]: batched {a} vs scalar {b}");
            prop_assert!(a >= 0.0, "pmf[{j}] = {a} negative");
            total += a;
        }
        prop_assert!((total - 1.0).abs() <= 1e-10, "pmf sums to {total}");
    }

    #[test]
    fn pb_table_single_rank_update_matches_fresh_dp(
        base in proptest::collection::vec(0.0f64..=1.0, 1..=128),
        extra in 0.0f64..=1.0,
        pick in 0usize..128,
    ) {
        // One add-one, one remove-one, and one replace, each checked
        // against a from-scratch DP to the tight single-step bound.
        let check = |table: &PbTable, multiset: &[f64], what: &str| {
            let reference = poisson_binomial_pmf(multiset);
            for (j, (&a, &b)) in table.pmf().iter().zip(reference.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-13,
                    "{what} pmf[{j}]: updated {a} vs fresh {b}"
                );
                assert!(a >= 0.0, "{what} pmf[{j}] = {a} negative");
            }
            let total: f64 = table.pmf().iter().sum();
            assert!((total - 1.0).abs() <= 1e-10, "{what} pmf sums to {total}");
        };
        let mut table = PbTable::from_probs(&base).unwrap();
        let mut current = base;
        table.push(extra).unwrap();
        current.push(extra);
        check(&table, &current, "add-one");
        let victim = current.swap_remove(pick % current.len());
        table.remove(victim).unwrap();
        check(&table, &current, "remove-one");
        if !current.is_empty() {
            let slot = pick % current.len();
            table.replace(current[slot], extra).unwrap();
            current[slot] = extra;
            check(&table, &current, "replace");
        }
    }

    #[test]
    fn pb_table_rank_update_walks_match_fresh_dp(
        base in proptest::collection::vec(0.0f64..=1.0, 1..=48),
        edits in proptest::collection::vec((0.0f64..=1.0, 0usize..64, 0u8..3), 1..=24),
    ) {
        // Random walk of add-one / remove-one / replace rank updates,
        // compared against a from-scratch DP on the tracked multiset
        // after every step. Deconvolution round-off accumulates over the
        // walk; the contractive recurrences keep it at the 1e-12 bound
        // the k-level ESS ledger is specified to (single-step paths hold
        // 1e-13, see above).
        let mut table = PbTable::from_probs(&base).unwrap();
        let mut current = base;
        for (p, pick, op) in edits {
            match op {
                0 => {
                    table.push(p).unwrap();
                    current.push(p);
                }
                1 if !current.is_empty() => {
                    let victim = current.swap_remove(pick % current.len());
                    table.remove(victim).unwrap();
                }
                _ if !current.is_empty() => {
                    let slot = pick % current.len();
                    let old = current[slot];
                    table.replace(old, p).unwrap();
                    current[slot] = p;
                }
                _ => {}
            }
            let reference = poisson_binomial_pmf(&current);
            prop_assert_eq!(table.len(), current.len());
            let mut total = 0.0;
            for (j, (&a, &b)) in table.pmf().iter().zip(reference.iter()).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-12,
                    "after walk to {} factors pmf[{j}]: updated {a} vs fresh {b}",
                    current.len()
                );
                prop_assert!(a >= 0.0);
                total += a;
            }
            prop_assert!((total - 1.0).abs() <= 1e-10);
        }
    }

    #[test]
    fn heterogeneous_payoff_matches_pre_kernel_reference(
        vals in proptest::collection::vec(0.1f64..5.0, 2..=5),
        weight_rows in proptest::collection::vec(
            proptest::collection::vec(0.05f64..1.0, 5), 2..=9,
        ),
    ) {
        // weight_rows[0] is rho; the rest are the k−1 opponents.
        let f = ValueProfile::from_unsorted(vals).unwrap();
        let m = f.len();
        let strategies: Vec<Strategy> = weight_rows
            .iter()
            .map(|w| Strategy::from_weights(w[..m].to_vec()).unwrap())
            .collect();
        let rho = &strategies[0];
        let opponents: Vec<&Strategy> = strategies[1..].iter().collect();
        let k = opponents.len() + 1;
        let ctx = PayoffContext::new(&Sharing, k).unwrap();
        let batched = ctx.heterogeneous_payoff(&f, rho, &opponents).unwrap();
        // Pre-kernel reference: fresh per-site Poisson-binomial DP.
        let mut reference = 0.0;
        for x in 0..m {
            let probs: Vec<f64> = opponents.iter().map(|o| o.prob(x)).collect();
            let pmf = poisson_binomial_pmf(&probs);
            let expected_c: f64 =
                kahan_sum(pmf.iter().zip(ctx.c_table().iter()).map(|(p, c)| p * c));
            reference += rho.prob(x) * f.value(x) * expected_c;
        }
        prop_assert!(
            (batched - reference).abs() <= 1e-13 * (1.0 + reference.abs()),
            "batched {batched} vs scalar {reference}"
        );
    }

    #[test]
    fn binomial_pointwise_vs_vector(n in 0usize..40, p in 0.0f64..=1.0, j in 0usize..45) {
        let vec = binomial_pmf_vector(n, p);
        let point = binomial_pmf(n, j, p);
        if j <= n {
            prop_assert!((vec[j] - point).abs() < 1e-12);
        } else {
            prop_assert_eq!(point, 0.0);
        }
    }
}
