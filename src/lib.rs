//! # selfish-explorers
//!
//! Umbrella crate for the reproduction of Collet & Korman, *"Intense
//! Competition can Drive Selfish Explorers to Optimize Coverage"* (SPAA
//! 2018, arXiv:1805.01319). Re-exports the four workspace crates:
//!
//! * [`core`](dispersal_core) — the dispersal game: value profiles,
//!   strategies, congestion policies, coverage, IFD/σ⋆ solvers, ESS and
//!   SPoA machinery.
//! * [`sim`](dispersal_sim) — one-shot Monte Carlo, replicator/logit
//!   dynamics, invasion and Moran experiments.
//! * [`search`](dispersal_search) — the Bayesian parallel-search substrate
//!   (σ⋆ = first round of A⋆).
//! * [`mech`](dispersal_mech) — policy catalog, evaluation scorecards,
//!   adversarial SPoA search, Kleinberg–Oren reward-design baseline.
//!
//! See `examples/` for runnable walkthroughs and `crates/bench` for the
//! binaries regenerating every figure/table of the paper.

#![warn(missing_docs)]

pub use dispersal_core;
pub use dispersal_mech;
pub use dispersal_search;
pub use dispersal_sim;

/// Everything most programs need, in one import.
pub mod prelude {
    pub use dispersal_core::prelude::*;
    pub use dispersal_mech::prelude::*;
    pub use dispersal_search::prelude::*;
    pub use dispersal_sim::prelude::*;
}
