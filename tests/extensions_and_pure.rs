//! Integration tests for the extension layers: Section 5.1 future work
//! (visit costs, capacity), the pure-equilibrium machinery of Section 1.2,
//! and the closed-form 2×2 cross-check of Figure 1.

use selfish_explorers::dispersal_core::extensions::{capacity_coverage, solve_ifd_with_costs};
use selfish_explorers::dispersal_core::pure::{
    best_response_dynamics, enumerate_pure_equilibria, is_pure_nash, rosenthal_potential,
    PureProfile,
};
use selfish_explorers::dispersal_core::two_by_two::solve_two_by_two;
use selfish_explorers::prelude::*;

#[test]
fn figure1_curves_match_closed_form_everywhere() {
    // The fig1 binary uses the general solvers; pin them against the
    // pencil-and-paper 2x2 formulas over the full c sweep.
    for f2 in [0.3, 0.5] {
        let f = ValueProfile::new(vec![1.0, f2]).unwrap();
        for i in 0..=100 {
            let c = -0.5 + i as f64 * 0.01;
            let closed = solve_two_by_two(1.0, f2, c).unwrap();
            let policy = TwoLevel::new(c).unwrap();
            let ifd = solve_ifd(&policy, &f, 2).unwrap();
            let ifd_cov = coverage(&f, &ifd.strategy, 2).unwrap();
            assert!(
                (ifd_cov - closed.ifd_coverage).abs() < 1e-7,
                "c = {c}: solver {ifd_cov} vs closed form {}",
                closed.ifd_coverage
            );
            let wel = welfare_optimum(&policy, &f, 2).unwrap();
            let wel_cov = coverage(&f, &wel.strategy, 2).unwrap();
            assert!(
                (wel_cov - closed.welfare_coverage).abs() < 1e-6,
                "c = {c}: welfare {wel_cov} vs {}",
                closed.welfare_coverage
            );
        }
    }
}

#[test]
fn visit_costs_shrink_support_monotonically() {
    let f = ValueProfile::new(vec![1.0, 0.8, 0.6, 0.4]).unwrap();
    let k = 4;
    let mut prev_p = f64::INFINITY;
    for i in 0..10 {
        let tax = i as f64 * 0.05;
        let costs = [0.0, tax, 0.0, 0.0];
        let ifd = solve_ifd_with_costs(&Exclusive, &f, &costs, k).unwrap();
        let p_taxed = ifd.strategy.prob(1);
        assert!(p_taxed <= prev_p + 1e-9, "tax {tax}: {p_taxed} > {prev_p}");
        prev_p = p_taxed;
        // The untaxed sites absorb the displaced probability.
        let total: f64 = ifd.strategy.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

#[test]
fn capacity_interpolates_between_extremes() {
    let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
    let k = 3;
    let p = Strategy::new(vec![0.7, 0.3]).unwrap();
    let plain = coverage(&f, &p, k).unwrap();
    // Large cap -> plain coverage; small cap -> k*cap (everything consumed).
    assert!((capacity_coverage(&f, &p, k, 1e9).unwrap() - plain).abs() < 1e-9);
    let tiny = capacity_coverage(&f, &p, k, 1e-4).unwrap();
    assert!((tiny - k as f64 * 1e-4).abs() < 1e-6);
}

#[test]
fn pure_equilibria_bracket_symmetric_coverage_under_exclusive() {
    let f = ValueProfile::new(vec![1.0, 0.8, 0.55, 0.35]).unwrap();
    for k in [2usize, 3] {
        let pure = enumerate_pure_equilibria(&Exclusive, &f, k, 100_000).unwrap();
        let sym = optimal_coverage(&f, k).unwrap();
        assert!(pure.count > 0);
        assert!(pure.best_coverage >= sym.coverage - 1e-9);
        assert!((pure.best_coverage - f.top_sum(k)).abs() < 1e-9);
    }
}

#[test]
fn best_response_from_sigma_star_samples_reaches_pure_nash() {
    // Sampling a pure profile from sigma* and letting best response clean
    // it up is a natural decentralized pipeline; it always ends in a pure
    // NE (potential argument) and never loses coverage on the way for the
    // exclusive policy.
    use rand::SeedableRng;
    let f = ValueProfile::new(vec![1.0, 0.7, 0.45, 0.3]).unwrap();
    let k = 3;
    let star = sigma_star(&f, k).unwrap().strategy;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    for _ in 0..25 {
        let sites: Vec<usize> = (0..k).map(|_| star.sample(&mut rng)).collect();
        let start = PureProfile::new(sites, f.len()).unwrap();
        let phi_start = rosenthal_potential(&Exclusive, &f, &start).unwrap();
        let start_coverage = start.coverage(&f);
        let (eq, _) = best_response_dynamics(&Exclusive, &f, start, 10_000).unwrap();
        assert!(is_pure_nash(&Exclusive, &f, &eq).unwrap());
        let phi_eq = rosenthal_potential(&Exclusive, &f, &eq).unwrap();
        assert!(phi_eq >= phi_start - 1e-12);
        // Under the exclusive policy the potential IS the coverage, so
        // best-response cleanup never hurts the group.
        assert!(eq.coverage(&f) >= start_coverage - 1e-12);
    }
}

#[test]
fn exclusive_potential_equals_coverage() {
    // Under C_exc only the first player at a site earns anything, so
    // Rosenthal's potential collapses to the realized coverage — the
    // formal reason selfish improvement aligns with the group objective.
    let f = ValueProfile::new(vec![1.0, 0.6, 0.2]).unwrap();
    for sites in [vec![0, 0, 0], vec![0, 1, 2], vec![2, 2, 1]] {
        let profile = PureProfile::new(sites, 3).unwrap();
        let phi = rosenthal_potential(&Exclusive, &f, &profile).unwrap();
        assert!((phi - profile.coverage(&f)).abs() < 1e-12);
    }
}
