//! Cross-crate integration: the simulation, search, and mechanism layers
//! must agree with the analytic core.

use selfish_explorers::prelude::*;

#[test]
fn simulation_confirms_analytic_coverage_for_catalog() {
    let f = ValueProfile::new(vec![1.0, 0.7, 0.4, 0.2]).unwrap();
    let k = 3;
    for named in standard_catalog() {
        let p = Strategy::proportional(f.values()).unwrap();
        let report = estimate_symmetric(
            &f,
            named.policy.as_ref(),
            &p,
            k,
            McConfig { trials: 120_000, seed: 5, shards: 16 },
        )
        .unwrap();
        let analytic = coverage(&f, &p, k).unwrap();
        assert!(
            report.coverage.covers(analytic, 2e-3),
            "{}: MC {} ± {} vs analytic {analytic}",
            named.name,
            report.coverage.mean,
            report.coverage.ci95
        );
    }
}

#[test]
fn replicator_and_solver_agree_on_equilibrium() {
    let f = ValueProfile::new(vec![1.0, 0.6, 0.3]).unwrap();
    let k = 3;
    for policy in [&Exclusive as &dyn Congestion, &Sharing, &TwoLevel { c: -0.2 }] {
        let ifd = solve_ifd(policy, &f, k).unwrap();
        let start = Strategy::from_weights(vec![1.0, 1.1, 0.9]).unwrap();
        let run = run_replicator(
            policy,
            &f,
            &start,
            k,
            ReplicatorConfig { velocity_tol: 1e-11, ..Default::default() },
        )
        .unwrap();
        let d = run.state.tv_distance(&ifd.strategy).unwrap();
        assert!(d < 1e-4, "{}: dynamics vs solver distance {d}", policy.name());
    }
}

#[test]
fn search_round_one_identity_across_priors() {
    for (prior, k) in [
        (Prior::zipf(20, 1.0).unwrap(), 3usize),
        (Prior::geometric(10, 0.6).unwrap(), 2),
        (Prior::uniform(7).unwrap(), 5),
    ] {
        let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
        let round1 = plan.round(0).unwrap();
        let star = sigma_star(prior.profile(), k).unwrap().strategy;
        assert!(round1.linf_distance(&star).unwrap() < 1e-12);
    }
}

#[test]
fn designed_rewards_reproduce_exclusive_coverage_under_sharing() {
    // mech + core: the KO design under sharing matches what exclusive
    // achieves natively.
    let f = ValueProfile::zipf(9, 1.0, 0.9).unwrap();
    let k = 4;
    let native = solve_ifd(&Exclusive, &f, k).unwrap();
    let native_cov = coverage(&f, &native.strategy, k).unwrap();
    let target = sigma_star(&f, k).unwrap().strategy;
    let design = design_rewards(&Sharing, &target, k, 1.0).unwrap();
    let induced = solve_ifd(&Sharing, &design.rewards, k).unwrap();
    let induced_cov = coverage(&f, &induced.strategy, k).unwrap();
    assert!((native_cov - induced_cov).abs() < 1e-7);
}

#[test]
fn invasion_experiment_matches_exact_ess_ledger() {
    // sim + core: empirical invasion advantage tracks the exact Eq. (3)
    // computation.
    let f = ValueProfile::new(vec![1.0, 0.5]).unwrap();
    let k = 2;
    let star = sigma_star(&f, k).unwrap().strategy;
    let mutant = Strategy::new(vec![0.3, 0.7]).unwrap();
    let report = run_invasion(
        &Exclusive,
        &f,
        &star,
        &mutant,
        k,
        InvasionConfig { epsilon: 0.3, matches: 400_000, seed: 11, shards: 16 },
    )
    .unwrap();
    let tol = report.resident_payoff.ci95 + report.mutant_payoff.ci95 + 1e-3;
    assert!((report.advantage - report.analytic_advantage).abs() < tol);
    assert!(report.analytic_advantage > 0.0);
}

#[test]
fn evaluator_ranks_exclusive_first_on_witness() {
    use rand::SeedableRng;
    let k = 3;
    let f = ValueProfile::slow_decay_witness(4 * k, k).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let evals = evaluate_catalog(&f, k, 0, &mut rng).unwrap();
    let mut sorted = evals.clone();
    sorted.sort_by(|a, b| a.spoa.partial_cmp(&b.spoa).unwrap());
    assert_eq!(sorted[0].policy, "exclusive");
    assert!((sorted[0].spoa - 1.0).abs() < 1e-6);
    assert!(sorted[1].spoa > 1.0);
}

#[test]
fn moran_process_orders_sites_like_sigma_star() {
    let f = ValueProfile::new(vec![1.0, 0.55, 0.3]).unwrap();
    let k = 3;
    let cfg = MoranConfig {
        population: 240,
        generations: 25_000,
        burn_in: 5_000,
        rounds_per_generation: 3,
        selection: 5.0,
        mutation: 0.01,
        seed: 77,
    };
    let run = run_moran(&Exclusive, &f, k, cfg).unwrap();
    let freq = run.mean_frequencies;
    assert!(freq.prob(0) > freq.prob(1));
    assert!(freq.prob(1) > freq.prob(2));
    let star = sigma_star(&f, k).unwrap().strategy;
    assert!(freq.tv_distance(&star).unwrap() < 0.15);
}
