//! Property-based tests (proptest) of the core invariants, over random
//! instances rather than the curated grids of `theorems.rs`.

use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use selfish_explorers::prelude::Strategy;
use selfish_explorers::prelude::*;

/// Random positive value vectors of dimension 2..=12.
fn value_vec() -> impl PropStrategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..10.0, 2..=12)
}

/// Random player counts.
fn player_count() -> impl PropStrategy<Value = usize> {
    1usize..=8
}

/// Random two-level congestion parameters (collision payoff ≤ 1).
fn two_level_c() -> impl PropStrategy<Value = f64> {
    -1.0f64..1.0
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sigma_star_is_a_distribution_with_prefix_support(values in value_vec(), k in player_count()) {
        let f = ValueProfile::from_unsorted(values).unwrap();
        let star = sigma_star(&f, k).unwrap();
        let sum: f64 = star.strategy.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(star.strategy.probs().iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        // Support is a prefix: no zero followed by a positive.
        let mut seen_zero = false;
        for &p in star.strategy.probs() {
            if p <= 1e-12 {
                seen_zero = true;
            } else {
                prop_assert!(!seen_zero, "support is not a prefix");
            }
        }
        prop_assert_eq!(star.support, star.strategy.support_size(1e-12));
    }

    #[test]
    fn sigma_star_matches_general_ifd_solver(values in value_vec(), k in 2usize..=6) {
        let f = ValueProfile::from_unsorted(values).unwrap();
        let star = sigma_star(&f, k).unwrap();
        let solved = solve_ifd(&Exclusive, &f, k).unwrap();
        prop_assert!(star.strategy.linf_distance(&solved.strategy).unwrap() < 1e-6);
    }

    #[test]
    fn coverage_of_sigma_star_dominates_everything(values in value_vec(), k in player_count(), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let f = ValueProfile::from_unsorted(values).unwrap();
        let star = sigma_star(&f, k).unwrap();
        let star_cov = coverage(&f, &star.strategy, k).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..f.len()).map(|_| rng.gen::<f64>().max(1e-9)).collect();
        let p = Strategy::from_weights(weights).unwrap();
        prop_assert!(coverage(&f, &p, k).unwrap() <= star_cov + 1e-9);
    }

    #[test]
    fn coverage_bounds_and_complement(values in value_vec(), k in player_count()) {
        let f = ValueProfile::from_unsorted(values).unwrap();
        let p = Strategy::uniform(f.len()).unwrap();
        let cov = coverage(&f, &p, k).unwrap();
        let miss = miss_mass(&f, &p, k).unwrap();
        prop_assert!(cov >= 0.0 && cov <= f.total() + 1e-9);
        prop_assert!((cov + miss - f.total()).abs() < 1e-9 * f.total().max(1.0));
    }

    #[test]
    fn ifd_residual_small_for_two_level_policies(values in value_vec(), k in 2usize..=6, c in two_level_c()) {
        let f = ValueProfile::from_unsorted(values).unwrap();
        let policy = TwoLevel::new(c).unwrap();
        let ctx = PayoffContext::new(&policy, k).unwrap();
        if ctx.is_degenerate() {
            return Ok(()); // c == 1 makes the policy constant
        }
        let ifd = solve_ifd(&policy, &f, k).unwrap();
        prop_assert!(ifd.residual < 1e-7, "residual {}", ifd.residual);
        // And the IFD is a Nash equilibrium.
        let gap = dispersal_core::ifd::nash_gap(&policy, &f, &ifd.strategy, k).unwrap();
        prop_assert!(gap < 1e-7, "nash gap {gap}");
    }

    #[test]
    fn exclusive_spoa_is_always_one(values in value_vec(), k in 2usize..=6) {
        let f = ValueProfile::from_unsorted(values).unwrap();
        let point = spoa(&Exclusive, &f, k).unwrap();
        prop_assert!((point.ratio - 1.0).abs() < 1e-6, "SPoA {}", point.ratio);
    }

    #[test]
    fn mixture_payoff_is_linear_interpolation_at_k2(values in value_vec(), eps in 0.0f64..1.0) {
        // For k = 2 the mixture payoff is exactly linear in eps.
        let f = ValueProfile::from_unsorted(values).unwrap();
        let m = f.len();
        let sigma = Strategy::uniform_on_top(m, 1).unwrap();
        let pi = Strategy::uniform(m).unwrap();
        let rho = Strategy::uniform(m).unwrap();
        let ctx = PayoffContext::new(&Sharing, 2).unwrap();
        let at0 = ctx.mixture_payoff(&f, &rho, &sigma, &pi, 0.0).unwrap();
        let at1 = ctx.mixture_payoff(&f, &rho, &sigma, &pi, 1.0).unwrap();
        let at_eps = ctx.mixture_payoff(&f, &rho, &sigma, &pi, eps).unwrap();
        prop_assert!((at_eps - ((1.0 - eps) * at0 + eps * at1)).abs() < 1e-9);
    }

    #[test]
    fn welfare_optimum_dominates_equilibrium_payoff(values in value_vec(), k in 2usize..=5, c in -0.5f64..0.99) {
        let f = ValueProfile::from_unsorted(values).unwrap();
        let policy = TwoLevel::new(c).unwrap();
        let ctx = PayoffContext::new(&policy, k).unwrap();
        if ctx.is_degenerate() {
            return Ok(());
        }
        let ifd = solve_ifd(&policy, &f, k).unwrap();
        let u_eq = ctx.symmetric_payoff(&f, &ifd.strategy).unwrap();
        let opt = welfare_optimum(&policy, &f, k).unwrap();
        prop_assert!(opt.payoff >= u_eq - 1e-7, "welfare {} < equilibrium {u_eq}", opt.payoff);
    }

    #[test]
    fn strategy_sampler_support_matches(values in value_vec(), seed in 0u64..100) {
        use rand::SeedableRng;
        let p = Strategy::from_weights(values).unwrap();
        let sampler = StrategySampler::new(&p);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..64 {
            let site = sampler.sample(&mut rng);
            prop_assert!(p.prob(site) > 0.0, "sampled a zero-probability site");
        }
    }

    #[test]
    fn search_plan_round_one_identity(values in value_vec(), k in 1usize..=6) {
        let prior = Prior::from_weights(values).unwrap();
        let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
        let round1 = plan.round(0).unwrap();
        let star = sigma_star(prior.profile(), k).unwrap().strategy;
        prop_assert!(round1.linf_distance(&star).unwrap() < 1e-10);
    }

    #[test]
    fn detection_cdf_monotone_for_random_priors(values in value_vec(), k in 1usize..=4) {
        let prior = Prior::from_weights(values).unwrap();
        let mut plan = IteratedSigmaStar::new(&prior, k).unwrap();
        let eval = evaluate_plan(&mut plan, &prior, k, 60).unwrap();
        let mut prev = 0.0;
        for &s in &eval.success_by_round {
            prop_assert!(s >= prev - 1e-12 && s <= 1.0 + 1e-9);
            prev = s;
        }
        prop_assert!(eval.expected_rounds >= 1.0 - 1e-9);
    }
}
