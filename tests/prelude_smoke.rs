//! API lock for the umbrella crate: `selfish_explorers::prelude::*` must
//! expose the paper's core entry points. This is a compile-time guard on
//! the re-export wiring (plus one tiny end-to-end exercise), so a future
//! refactor of the member crates' preludes cannot silently break the
//! umbrella surface.

use selfish_explorers::prelude::*;

/// Referencing each symbol as a value/path forces a compile error if any
/// re-export disappears, independent of what the runtime check covers.
#[test]
fn prelude_exposes_core_entry_points() {
    let _sigma: fn(&ValueProfile, usize) -> Result<SigmaStar> = sigma_star;
    let _optimal: fn(&ValueProfile, usize) -> Result<OptimalCoverage> = optimal_coverage;
    let _coverage: fn(&ValueProfile, &Strategy, usize) -> Result<f64> = coverage;
    let _catalog: fn() -> Vec<NamedPolicy> = standard_catalog;
    let _mc: fn(&ValueProfile, &dyn Congestion, &Strategy, usize, McConfig) -> Result<McReport> =
        estimate_symmetric;
}

#[test]
fn prelude_symbols_work_end_to_end() {
    let f = ValueProfile::new(vec![1.0, 0.3]).unwrap();
    let k = 2;

    let star = sigma_star(&f, k).unwrap();
    let opt = optimal_coverage(&f, k).unwrap();
    let cov = coverage(&f, &star.strategy, k).unwrap();
    assert!((cov - opt.coverage).abs() < 1e-9, "sigma* must be coverage-optimal (Theorem 4)");

    assert!(!standard_catalog().is_empty(), "catalog must ship named policies");

    let report = estimate_symmetric(
        &f,
        &Exclusive,
        &star.strategy,
        k,
        McConfig { trials: 20_000, seed: 7, shards: 4 },
    )
    .unwrap();
    assert!(
        (report.coverage.mean - cov).abs() < 0.05,
        "Monte Carlo coverage {} far from analytic {cov}",
        report.coverage.mean
    );
}
