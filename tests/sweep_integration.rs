//! Integration test for the parallel sweep engine: drive a small
//! policy-evaluation grid through `dispersal-sim`'s sweep machinery and
//! check the paper's ordering holds on every cell.

use selfish_explorers::prelude::*;

#[test]
fn sweep_grid_confirms_exclusive_dominance_everywhere() {
    let instances = vec![
        ("zipf(1.0) M=10".to_string(), ValueProfile::zipf(10, 1.0, 1.0).unwrap()),
        ("slow-decay M=12".to_string(), ValueProfile::slow_decay_witness(12, 3).unwrap()),
        ("geometric(0.8) M=8".to_string(), ValueProfile::geometric(8, 1.0, 0.8).unwrap()),
    ];
    let ks = [2usize, 3, 5];
    // For each cell: (exclusive equilibrium coverage, sharing equilibrium
    // coverage, optimal coverage).
    let cells = sweep_grid(&instances, &ks, 7, |f, k, _rng| {
        let excl = solve_ifd(&Exclusive, f, k)?;
        let share = solve_ifd(&Sharing, f, k)?;
        let opt = optimal_coverage(f, k)?;
        Ok((coverage(f, &excl.strategy, k)?, coverage(f, &share.strategy, k)?, opt.coverage))
    })
    .unwrap();
    assert_eq!(cells.len(), instances.len() * ks.len());
    for cell in &cells {
        let (excl, share, opt) = cell.output;
        // Corollary 5 on every cell.
        assert!(
            (excl - opt).abs() < 1e-7,
            "{} k={}: exclusive {excl} != optimal {opt}",
            cell.instance,
            cell.k
        );
        // Sharing never beats exclusive.
        assert!(
            share <= excl + 1e-9,
            "{} k={}: sharing {share} > exclusive {excl}",
            cell.instance,
            cell.k
        );
    }
    // Theorem 6 is strict somewhere on the witness instance.
    let strict = cells
        .iter()
        .filter(|c| c.instance.starts_with("slow-decay"))
        .any(|c| c.output.1 < c.output.0 - 1e-9);
    assert!(strict, "sharing should be strictly worse on the witness family");
}
