//! End-to-end verification of every theorem/observation in the paper,
//! across instance grids — the integration-level counterpart of the
//! experiment binaries.

use selfish_explorers::prelude::*;

fn instance_grid() -> Vec<(ValueProfile, usize)> {
    vec![
        (ValueProfile::new(vec![1.0, 0.3]).unwrap(), 2),
        (ValueProfile::new(vec![1.0, 0.5]).unwrap(), 2),
        (ValueProfile::zipf(20, 1.0, 1.0).unwrap(), 4),
        (ValueProfile::geometric(12, 2.0, 0.7).unwrap(), 5),
        (ValueProfile::linear(30, 1.0, 0.1).unwrap(), 7),
        (ValueProfile::uniform(8, 3.0).unwrap(), 3),
        (ValueProfile::slow_decay_witness(12, 3).unwrap(), 3),
    ]
}

#[test]
fn observation1_optimal_coverage_beats_bound() {
    for (f, k) in instance_grid() {
        let opt = optimal_coverage(&f, k).unwrap();
        let bound = observation1_bound(&f, k);
        assert!(opt.coverage > bound, "Cover(p*) = {} <= bound {bound}", opt.coverage);
    }
}

#[test]
fn observation2_ifd_unique_nash_equilibrium() {
    // The solved IFD is a Nash equilibrium, and perturbing it creates a
    // profitable deviation (uniqueness witness).
    for (f, k) in instance_grid() {
        for policy in [&Exclusive as &dyn Congestion, &Sharing] {
            let ifd = solve_ifd(policy, &f, k).unwrap();
            let gap = dispersal_core::ifd::nash_gap(policy, &f, &ifd.strategy, k).unwrap();
            assert!(gap < 1e-7, "IFD is not an equilibrium: gap {gap}");
        }
    }
}

#[test]
fn claim7_sigma_star_is_the_exclusive_ifd() {
    for (f, k) in instance_grid() {
        if k < 2 {
            continue;
        }
        let star = sigma_star(&f, k).unwrap();
        let solved = solve_ifd(&Exclusive, &f, k).unwrap();
        let d = star.strategy.linf_distance(&solved.strategy).unwrap();
        assert!(d < 1e-7, "closed form vs solver distance {d}");
        let residual =
            dispersal_core::sigma_star::ifd_residual_exclusive(&f, &star.strategy, k).unwrap();
        assert!(residual < 1e-8, "IFD residual {residual}");
    }
}

#[test]
fn theorem3_sigma_star_is_ess() {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    for (f, k) in instance_grid() {
        if f.len() > 12 {
            continue; // keep the exact Poisson-binomial checks fast
        }
        let star = sigma_star(&f, k).unwrap();
        let report = probe_ess_k(&Exclusive, &f, &star.strategy, 60, &mut rng, k).unwrap();
        assert!(report.passed(), "invasions: {:?}", report.invasions);
    }
}

#[test]
fn theorem4_sigma_star_uniquely_maximizes_coverage() {
    use rand::Rng;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    for (f, k) in instance_grid() {
        let star = sigma_star(&f, k).unwrap();
        let star_cov = coverage(&f, &star.strategy, k).unwrap();
        let opt = optimal_coverage(&f, k).unwrap();
        assert!((star_cov - opt.coverage).abs() < 1e-8);
        // Random strategies never do better; strictly worse unless equal to
        // sigma* (uniqueness).
        for _ in 0..25 {
            let weights: Vec<f64> = (0..f.len()).map(|_| rng.gen::<f64>().max(1e-9)).collect();
            let p = Strategy::from_weights(weights).unwrap();
            let cov = coverage(&f, &p, k).unwrap();
            assert!(cov <= star_cov + 1e-9);
            if p.linf_distance(&star.strategy).unwrap() > 1e-3 {
                assert!(cov < star_cov, "distinct strategy tied the optimum");
            }
        }
    }
}

#[test]
fn corollary5_exclusive_spoa_is_one() {
    for (f, k) in instance_grid() {
        let point = spoa(&Exclusive, &f, k).unwrap();
        assert!((point.ratio - 1.0).abs() < 1e-6, "SPoA = {}", point.ratio);
    }
}

#[test]
fn theorem6_other_policies_strictly_above_one() {
    // On the slow-decay witness of the Section 4 proof.
    for k in [2usize, 3, 5] {
        let f = ValueProfile::slow_decay_witness(4 * k, k).unwrap();
        for policy in [
            &Sharing as &dyn Congestion,
            &TwoLevel { c: 0.4 },
            &TwoLevel { c: -0.4 },
            &PowerLaw { beta: 1.5 },
            &Cooperative { theta: 0.5 },
        ] {
            let point = spoa(policy, &f, k).unwrap();
            assert!(
                point.ratio > 1.0 + 1e-9,
                "{} at k = {k}: SPoA = {}",
                policy.name(),
                point.ratio
            );
        }
    }
}

#[test]
fn kleinberg_oren_sharing_spoa_at_most_two() {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    for k in [2usize, 4, 8] {
        let result = spoa_supremum_search(&Sharing, k, 24, 30, &mut rng).unwrap();
        assert!(result.best_ratio < 2.0, "k = {k}: ratio {}", result.best_ratio);
    }
}

#[test]
fn figure1_shape_holds() {
    // ESS coverage peaks at c = 0 and equals the optimum there, for both
    // panels of Figure 1.
    for f2 in [0.3, 0.5] {
        let f = ValueProfile::new(vec![1.0, f2]).unwrap();
        let k = 2;
        let optimum = optimal_coverage(&f, k).unwrap().coverage;
        let cov_at = |c: f64| -> f64 {
            let ifd = solve_ifd(&TwoLevel::new(c).unwrap(), &f, k).unwrap();
            coverage(&f, &ifd.strategy, k).unwrap()
        };
        let at_zero = cov_at(0.0);
        assert!((at_zero - optimum).abs() < 1e-9);
        for c in [-0.5, -0.25, 0.25, 0.5] {
            assert!(cov_at(c) < at_zero + 1e-12, "coverage at c = {c} beats c = 0");
        }
    }
}
