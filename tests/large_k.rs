//! Tier-2 large-`k` theorem tests: the paper's asymptotic directions
//! probed at `k ∈ {10³, 10⁴}`, far beyond the tier-1 suites' `k ≤ 256`.
//!
//! Every test here is `#[ignore]`d from tier-1 and meant to run as the
//! release smoke job:
//!
//! ```text
//! cargo test --release --test large_k -- --ignored
//! ```
//!
//! What makes this tier affordable is the interpolated kernel path: a
//! [`PayoffContext::with_grid`] context answers `g_C` queries in `O(1)`
//! (loose per-call tolerances — `1e-12` sits below the cubic-Hermite
//! error floor at `k ≳ 10⁴`, so these tests pass `1e-9`/`1e-6`), and the
//! σ⋆ closed form needs no kernel at all.

use selfish_explorers::dispersal_core::kernel::GTable;
use selfish_explorers::dispersal_core::payoff::PayoffContext;
use selfish_explorers::dispersal_core::policy::{PowerLaw, TwoLevel};
use selfish_explorers::dispersal_core::sigma_star::{ifd_residual_exclusive, sigma_star};
use selfish_explorers::dispersal_core::spoa::spoa_with_context;
use selfish_explorers::dispersal_core::value::ValueProfile;

/// σ⋆'s support `W` grows with `k` (Section 2.1: more competitors push
/// the equilibrium to spread over ever more sites), checked through
/// `k = 10⁴` on a Zipf profile wide enough to never saturate.
#[test]
#[ignore = "tier-2 large-k: run with cargo test --release -- --ignored"]
fn sigma_star_support_grows_through_k_equals_ten_thousand() {
    let f = ValueProfile::zipf(40_000, 1.0, 1.0).unwrap();
    let mut prev_support = 0usize;
    for k in [10usize, 100, 1_000, 10_000] {
        let star = sigma_star(&f, k).unwrap();
        assert!(
            star.support > prev_support,
            "support must grow strictly: W({k}) = {} after {prev_support}",
            star.support
        );
        assert!(star.support < f.len(), "profile saturated at k = {k}; widen it");
        // The closed form must still satisfy the IFD conditions of
        // Claim 7 at this scale.
        let residual = ifd_residual_exclusive(&f, &star.strategy, k).unwrap();
        assert!(residual < 1e-9, "k = {k}: IFD residual {residual}");
        prev_support = star.support;
    }
    // At k = 10⁴ the support is far beyond anything tier-1 touches.
    assert!(prev_support > 1_000, "W(10⁴) = {prev_support} unexpectedly small");
}

/// Near-exclusive congestion responses converge to the exclusive one as
/// the second-occupancy reward vanishes:
/// `sup_q |g_β(q) − (1−q)^{k−1}|` is strictly decreasing in the power-law
/// exponent `β`, at `k = 10³` and `k = 10⁴`. Evaluated through the
/// interpolated kernel with per-call tolerances matched to the scale
/// (`1e-6` at `10³`, `1e-3` at `10⁴` — these curves are stiff near
/// `q = 0`, and the adaptive start keeps the loose-tolerance build
/// cheap); the `O(1)` grid path is what makes a `k = 10⁴` curve sweep
/// feasible at all.
#[test]
#[ignore = "tier-2 large-k: run with cargo test --release -- --ignored"]
fn near_exclusive_g_curves_converge_to_exclusive_at_large_k() {
    let grid: Vec<f64> = (0..=2048).map(|i| i as f64 / 2048.0).collect();
    for (k, tol, final_bound) in [(1_000usize, 1e-6, 0.04), (10_000, 1e-3, 0.04)] {
        let n = (k - 1) as i32;
        let mut prev_deviation = f64::INFINITY;
        for beta in [1.0f64, 2.0, 4.0] {
            let table = GTable::new(&PowerLaw { beta }, k).unwrap().with_grid(tol).unwrap();
            let mut scratch = table.scratch();
            let mut deviation = 0.0f64;
            for &q in &grid {
                let interp = table.eval_fast_with(&mut scratch, q);
                let exclusive = (1.0 - q).powi(n);
                deviation = deviation.max((interp - exclusive).abs());
            }
            assert!(
                deviation < prev_deviation,
                "k = {k} beta = {beta}: deviation {deviation} did not shrink from {prev_deviation}"
            );
            prev_deviation = deviation;
        }
        // beta = 4 is already near-exclusive at these k.
        assert!(prev_deviation < final_bound, "k = {k}: final deviation {prev_deviation}");
    }
}

/// SPoA of near-exclusive two-level policies trends to 1 as the policy
/// approaches exclusivity (Corollary 5 limit; Theorem 6 keeps it above 1
/// away from the limit), probed at `k = 10³` on the paper's slow-decay
/// witness family via a grid-backed context.
#[test]
#[ignore = "tier-2 large-k: run with cargo test --release -- --ignored"]
fn near_exclusive_spoa_trends_to_one_at_k_one_thousand() {
    let k = 1_000usize;
    let f = ValueProfile::slow_decay_witness(4 * k, k).unwrap();
    let mut prev_ratio = f64::INFINITY;
    for c in [0.5f64, 0.2, 0.05] {
        let ctx = PayoffContext::new(&TwoLevel { c }, k).unwrap().with_grid(1e-9).unwrap();
        let point = spoa_with_context(&ctx, &f).unwrap();
        assert!(
            point.ratio >= 1.0 - 1e-6,
            "c = {c}: SPoA {} below 1 (equilibrium cannot out-cover the optimum)",
            point.ratio
        );
        assert!(
            point.ratio < prev_ratio,
            "c = {c}: SPoA {} did not shrink from {prev_ratio}",
            point.ratio
        );
        assert!(point.ifd_residual < 1e-6, "c = {c}: IFD residual {}", point.ifd_residual);
        prev_ratio = point.ratio;
    }
    // Nearest-to-exclusive policy: within a few percent of the exclusive
    // optimum (SPoA = 1, Corollary 5).
    assert!(prev_ratio < 1.05, "SPoA at c = 0.05 is {prev_ratio}");
}
