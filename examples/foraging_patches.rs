//! Animal-dispersal scenario (Sections 1.1 and 5.2 of the paper).
//!
//! Two "species" forage over the same patches at different times of day, so
//! they never meet each other — but within each species, conspecifics
//! collide. The peaceful species shares patches (`C(ℓ) = 1/ℓ`); the
//! aggressive species fights, so colliding individuals gain nothing (or
//! get hurt). The paper's counterintuitive prediction: the *aggressive*
//! species covers the patches better and hence, under between-group
//! competition, is the superior group.
//!
//! Run with: `cargo run --example foraging_patches`

use selfish_explorers::prelude::*;

fn main() -> Result<()> {
    // 12 patches, geometric abundance decay; 6 foragers per species.
    let patches = ValueProfile::geometric(12, 10.0, 0.75)?;
    let k = 6;
    println!(
        "patch values: {:?}",
        patches.values().iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    println!("total food available: {:.2}\n", patches.total());

    let species: Vec<(&str, Box<dyn Congestion>)> = vec![
        ("peaceful (sharing)", Box::new(Sharing)),
        ("exclusive (collision wipes the reward)", Box::new(Exclusive)),
        ("aggressive (collision injures: c = -0.3)", Box::new(TwoLevel::new(-0.3)?)),
    ];

    let best = optimal_coverage(&patches, k)?.coverage;
    println!("coverage ceiling for any symmetric strategy: {:.3}\n", best);

    for (name, policy) in &species {
        // Where selfish evolution drives this species: the IFD of its own
        // collision costs (the ESS of the within-species game).
        let ifd = solve_ifd(policy.as_ref(), &patches, k)?;
        let group_coverage = coverage(&patches, &ifd.strategy, k)?;
        let ctx = PayoffContext::new(policy.as_ref(), k)?;
        let individual = ctx.symmetric_payoff(&patches, &ifd.strategy)?;
        println!("{name}:");
        println!("  occupied patches (support): {}", ifd.support);
        println!("  individual expected intake: {individual:.3}");
        println!(
            "  GROUP coverage: {group_coverage:.3} ({:.1}% of the ceiling)",
            100.0 * group_coverage / best
        );

        // Cross-validate the analytic coverage by simulation.
        let mc = estimate_symmetric(
            &patches,
            policy.as_ref(),
            &ifd.strategy,
            k,
            McConfig { trials: 200_000, seed: 1, shards: 32 },
        )?;
        println!("  simulated coverage: {:.3} +/- {:.3}\n", mc.coverage.mean, mc.coverage.ci95);
        assert!(mc.coverage.covers(group_coverage, 1e-2));
    }

    // The paper's takeaway, as an assertion: harsher collision costs yield
    // better group coverage, with the exclusive level exactly optimal.
    let cov = |c: &dyn Congestion| -> Result<f64> {
        let ifd = solve_ifd(c, &patches, k)?;
        coverage(&patches, &ifd.strategy, k)
    };
    let sharing_cov = cov(&Sharing)?;
    let exclusive_cov = cov(&Exclusive)?;
    println!(
        "sharing covers {sharing_cov:.3} < exclusive covers {exclusive_cov:.3} = optimum {best:.3}"
    );
    assert!(sharing_cov < exclusive_cov);
    assert!((exclusive_cov - best).abs() < 1e-9);
    Ok(())
}
