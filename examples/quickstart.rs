//! Quickstart: the paper's headline result in ~40 lines.
//!
//! Build the dispersal game, compute the equilibrium of the exclusive
//! ("Judgment of Solomon") policy, and watch it coincide with the best
//! possible symmetric coverage — while the classical sharing policy's
//! equilibrium falls short.
//!
//! Run with: `cargo run --example quickstart`

use selfish_explorers::prelude::*;

fn main() -> Result<()> {
    // A world of 10 patches with Zipf-decaying food values, explored by 4
    // foragers that cannot coordinate.
    let f = ValueProfile::zipf(10, 1.0, 1.0)?;
    let k = 4;

    // The best any symmetric (non-coordinating) group could do:
    let best = optimal_coverage(&f, k)?;
    println!("optimal symmetric coverage: {:.4}", best.coverage);

    // Under the exclusive policy, selfish play settles on sigma* ...
    let star = sigma_star(&f, k)?;
    println!(
        "sigma*: support W = {}, alpha = {:.4}, equilibrium value nu = {:.4}",
        star.support,
        star.alpha,
        star.equilibrium_value()
    );

    // ... whose coverage IS the optimum (Theorem 4 / Corollary 5):
    let star_cov = coverage(&f, &star.strategy, k)?;
    println!("coverage of sigma*:         {:.4} (gap {:.2e})", star_cov, best.coverage - star_cov);

    // The sharing policy's selfish equilibrium covers strictly less:
    let share_eq = solve_ifd(&Sharing, &f, k)?;
    let share_cov = coverage(&f, &share_eq.strategy, k)?;
    println!(
        "coverage of sharing IFD:    {:.4} (SPoA {:.4})",
        share_cov,
        best.coverage / share_cov
    );

    // And sigma* is evolutionarily stable: no mutant strategy invades.
    let mut rng = rand::thread_rng();
    let report = probe_ess_k(&Exclusive, &f, &star.strategy, 100, &mut rng, k)?;
    println!(
        "ESS probe: {} mutants tested, {} repelled, invasions: {}",
        report.mutants_tested,
        report.repelled,
        report.invasions.len()
    );
    assert!(report.passed());
    Ok(())
}
