//! Reproducibility probe: prints the raw bit patterns of representative
//! analytic (IFD, replicator) and stochastic (Monte-Carlo, invasion)
//! outputs. Capture its output before and after any numerics or engine
//! refactor (and across `RAYON_NUM_THREADS` settings) and `diff` — the
//! workspace's determinism contract says every line must be identical.

use dispersal_core::ifd::solve_ifd;
use dispersal_core::policy::{Exclusive, PowerLaw, Sharing, TwoLevel};
use dispersal_core::strategy::Strategy;
use dispersal_core::value::ValueProfile;
use dispersal_sim::invasion::{run_invasion, InvasionConfig};
use dispersal_sim::montecarlo::{estimate_symmetric, McConfig};
use dispersal_sim::replicator::{run_replicator, ReplicatorConfig};

fn main() {
    let f = ValueProfile::zipf(12, 1.0, 0.9).unwrap();
    for k in [2usize, 5, 17] {
        for (name, c) in [
            ("exclusive", &Exclusive as &dyn dispersal_core::policy::Congestion),
            ("sharing", &Sharing),
            ("twolevel", &TwoLevel { c: -0.4 }),
            ("powerlaw", &PowerLaw { beta: 2.0 }),
        ] {
            let ifd = solve_ifd(c, &f, k).unwrap();
            println!("ifd {name} k={k} value={:016x}", ifd.value.to_bits());
            for x in 0..3 {
                println!("ifd {name} k={k} p{x}={:016x}", ifd.strategy.prob(x).to_bits());
            }
        }
    }
    let start = Strategy::from_weights((1..=12).map(|i| i as f64).collect()).unwrap();
    let run = run_replicator(
        &Sharing,
        &f,
        &start,
        4,
        ReplicatorConfig { max_steps: 5_000, ..Default::default() },
    )
    .unwrap();
    for x in 0..12 {
        println!("repl p{x}={:016x}", run.state.prob(x).to_bits());
    }
    println!("repl steps={} vel={:016x}", run.steps, run.final_velocity.to_bits());
    let p = Strategy::proportional(f.values()).unwrap();
    let mc =
        estimate_symmetric(&f, &Sharing, &p, 6, McConfig { trials: 50_000, seed: 42, shards: 16 })
            .unwrap();
    println!("mc cov={:016x} pay={:016x}", mc.coverage.mean.to_bits(), mc.payoff.mean.to_bits());
    let inv = run_invasion(
        &Exclusive,
        &f,
        &p,
        &Strategy::uniform(12).unwrap(),
        3,
        InvasionConfig { epsilon: 0.1, matches: 50_000, seed: 7, shards: 8 },
    )
    .unwrap();
    println!(
        "inv adv={:016x} analytic={:016x}",
        inv.advantage.to_bits(),
        inv.analytic_advantage.to_bits()
    );
}
