//! Ablation: how does group coverage respond as collision costs sweep from
//! cooperative through sharing to outright aggression?
//!
//! Generalizes Figure 1 beyond two sites/players: for each competition
//! level `c` (two-level congestion), solve the equilibrium and measure
//! coverage, individual payoff, equilibrium support, and collision
//! statistics from simulation. The coverage curve peaks exactly at the
//! exclusive level `c = 0` — more aggression than that buys nothing, less
//! leaves coverage on the table.
//!
//! Run with: `cargo run --example aggression_ablation`

use selfish_explorers::prelude::*;

fn main() -> Result<()> {
    let f = ValueProfile::zipf(15, 1.0, 0.8)?;
    let k = 6usize;
    let optimum = optimal_coverage(&f, k)?.coverage;
    println!("M = 15 Zipf sites, k = {k}; optimal symmetric coverage {optimum:.4}\n");
    println!(
        "{:>6} | {:>9} | {:>9} | {:>7} | {:>9}",
        "c", "coverage", "payoff", "support", "% optimum"
    );
    println!("{}", "-".repeat(55));
    let mut best_c = f64::NAN;
    let mut best_cov = f64::NEG_INFINITY;
    for i in 0..=20 {
        let c = -0.5 + i as f64 * 0.05;
        let policy = TwoLevel::new(c)?;
        let ifd = solve_ifd(&policy, &f, k)?;
        let cov = coverage(&f, &ifd.strategy, k)?;
        let ctx = PayoffContext::new(&policy, k)?;
        let payoff = ctx.symmetric_payoff(&f, &ifd.strategy)?;
        if cov > best_cov {
            best_cov = cov;
            best_c = c;
        }
        println!(
            "{c:>6.2} | {cov:>9.4} | {payoff:>9.4} | {:>7} | {:>8.2}%",
            ifd.support,
            100.0 * cov / optimum
        );
    }
    println!(
        "\ncoverage peaks at c = {best_c:.2} with {best_cov:.4} (exclusive predicts c = 0, coverage {optimum:.4})"
    );
    assert!(best_c.abs() < 1e-9, "peak should be at the exclusive level");
    assert!((best_cov - optimum).abs() < 1e-7);

    // Collision accounting at three representative levels, by simulation.
    println!("\ncollision statistics (200k one-shot plays each):");
    for &c in &[-0.4, 0.0, 0.5] {
        let policy = TwoLevel::new(c)?;
        let ifd = solve_ifd(&policy, &f, k)?;
        let mut game = OneShotGame::symmetric(&f, &policy, &ifd.strategy, k)?;
        let mut rng = Seed(11).rng();
        let mut collision_sites = 0usize;
        let mut colliding_players = 0usize;
        let trials = 200_000;
        for _ in 0..trials {
            let o = game.play(&mut rng);
            collision_sites += o.collision_sites;
            colliding_players += o.colliding_players;
        }
        println!(
            "  c = {c:+.1}: {:.3} collision sites per play, {:.3} colliding players per play",
            collision_sites as f64 / trials as f64,
            colliding_players as f64 / trials as f64
        );
    }
    Ok(())
}
