//! Bayesian treasure hunt (the Section 2.1 connection to parallel search).
//!
//! `k` rescue drones sweep `M` sectors for a missing hiker whose location
//! prior decays with distance from the trailhead. Drones cannot talk to
//! each other. Each round, every drone picks a sector; the hike ends when
//! any drone hits the right sector. The iterated-σ⋆ plan (whose first
//! round is exactly the paper's σ⋆) is compared to naive dispatching.
//!
//! Run with: `cargo run --example treasure_hunt`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use selfish_explorers::prelude::*;

fn main() -> Result<()> {
    let sectors = 25usize;
    let drones = 5usize;
    let prior = Prior::geometric(sectors, 0.8)?;
    println!("{sectors} sectors, {drones} drones, geometric location prior\n");

    // The paper's identity: round 1 of the search plan is sigma* of the
    // prior.
    let mut plan = IteratedSigmaStar::new(&prior, drones)?;
    let round1 = plan.round(0)?;
    let star = sigma_star(prior.profile(), drones)?;
    assert!(round1.linf_distance(&star.strategy)? < 1e-12);
    println!(
        "round-1 plan = sigma* on the prior (support: {} of {} sectors)",
        star.support, sectors
    );

    // Compare plans analytically.
    let horizon = 300;
    let mut results: Vec<(String, f64)> = Vec::new();
    let mut iterated = IteratedSigmaStar::new(&prior, drones)?;
    results.push((
        "iterated sigma* (A* reconstruction)".into(),
        evaluate_plan(&mut iterated, &prior, drones, horizon)?.expected_rounds,
    ));
    let mut uniform = UniformPlan::new(sectors);
    results.push((
        "uniform dispatch".into(),
        evaluate_plan(&mut uniform, &prior, drones, horizon)?.expected_rounds,
    ));
    let mut proportional = ProportionalPlan::new(&prior)?;
    results.push((
        "prior-matching dispatch".into(),
        evaluate_plan(&mut proportional, &prior, drones, horizon)?.expected_rounds,
    ));
    let mut sweep = SweepPlan::new(sectors);
    results.push((
        "single-file sweep (all drones together)".into(),
        evaluate_plan(&mut sweep, &prior, drones, horizon)?.expected_rounds,
    ));
    println!("\nexpected rounds until the hiker is found:");
    for (name, rounds) in &results {
        println!("  {name:<42} {rounds:6.2}");
    }
    let best = results[0].1;
    for (name, rounds) in &results[1..] {
        assert!(best <= rounds + 1e-9, "iterated sigma* lost to {name}");
    }

    // Monte-Carlo sanity check, with drones remembering their own visits.
    let mut plan_mc = IteratedSigmaStar::new(&prior, drones)?;
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let with_memory = simulate_detection_time_with_memory(
        &mut plan_mc,
        &prior,
        drones,
        30_000,
        horizon,
        &mut rng,
    )?;
    println!(
        "\nwith per-drone memory (no self-repeats) the simulated time drops to {with_memory:.2} rounds"
    );
    assert!(with_memory <= best + 0.05);
    Ok(())
}
