//! Research-funding scenario (Section 1 + 1.6 of the paper).
//!
//! A foundation wants researchers spread over topics so that the community
//! covers the important problems. Researchers are selfish: they pick the
//! topic maximizing their expected credit. Two mechanisms compete:
//!
//! 1. **Kleinberg–Oren reward design** — keep the sharing credit norm
//!    ("simultaneous discovery splits the credit") and distort the grant
//!    sizes so the equilibrium lands on the optimal distribution. Needs to
//!    know the number of researchers `k`, and pays more than face value
//!    for hot topics.
//! 2. **Exclusive credit norm** — a priority rule: only a *sole*
//!    discoverer gets credit. No reward distortion, no knowledge of `k`,
//!    and the equilibrium is automatically the coverage optimum.
//!
//! Run with: `cargo run --example grant_design`

use selfish_explorers::prelude::*;

fn main() -> Result<()> {
    // 8 research topics with decreasing importance; 5 researchers.
    let topics = ValueProfile::new(vec![1.0, 0.8, 0.55, 0.4, 0.3, 0.22, 0.15, 0.1])?;
    let k = 5;
    let optimal = optimal_coverage(&topics, k)?;
    println!("topic importances: {:?}", topics.values());
    println!("optimal expected topic coverage: {:.4}\n", optimal.coverage);

    // --- Mechanism 0: do nothing (sharing norm, face-value grants).
    let laissez_faire = solve_ifd(&Sharing, &topics, k)?;
    let lf_cov = coverage(&topics, &laissez_faire.strategy, k)?;
    println!(
        "laissez-faire (sharing norm):   coverage {:.4} ({:.2}% of optimal)",
        lf_cov,
        100.0 * lf_cov / optimal.coverage
    );

    // --- Mechanism 1: Kleinberg-Oren reward design under sharing.
    let target = sigma_star(&topics, k)?.strategy;
    let design = design_rewards(&Sharing, &target, k, 1.0)?;
    let design_err = verify_design(&Sharing, &design, &target)?;
    let induced = solve_ifd(&Sharing, &design.rewards, k)?;
    let ko_cov = coverage(&topics, &induced.strategy, k)?;
    println!(
        "Kleinberg-Oren designed grants: coverage {:.4} (design error {:.1e})",
        ko_cov, design_err
    );
    println!(
        "  distorted grant sizes: {:?}",
        design.rewards.values().iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>()
    );
    println!("  !! valid only for exactly k = {k} researchers");
    let stale = solve_ifd(&Sharing, &design.rewards, k + 3)?; // audience grew
    let stale_cov = coverage(&topics, &stale.strategy, k + 3)?;
    let fresh_optimal = optimal_coverage(&topics, k + 3)?.coverage;
    println!(
        "  with k = {} researchers the same grants cover {:.4} vs optimal {:.4}\n",
        k + 3,
        stale_cov,
        fresh_optimal
    );

    // --- Mechanism 2: the exclusive credit norm (this paper).
    let priority = solve_ifd(&Exclusive, &topics, k)?;
    let excl_cov = coverage(&topics, &priority.strategy, k)?;
    println!("exclusive credit norm:          coverage {:.4} (= optimal, no k needed)", excl_cov);
    // And it self-adjusts when the community grows:
    let grown = solve_ifd(&Exclusive, &topics, k + 3)?;
    let grown_cov = coverage(&topics, &grown.strategy, k + 3)?;
    println!(
        "  with k = {} researchers it covers {:.4} vs optimal {:.4} — still exact",
        k + 3,
        grown_cov,
        fresh_optimal
    );

    assert!((excl_cov - optimal.coverage).abs() < 1e-8);
    assert!((grown_cov - fresh_optimal).abs() < 1e-8);
    assert!(lf_cov < optimal.coverage - 1e-6);
    Ok(())
}
